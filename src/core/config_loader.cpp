#include "core/config_loader.hpp"

#include <charconv>
#include <fstream>
#include <regex>

#include "util/strings.hpp"

namespace cbde::core {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw ConfigError("config line " + std::to_string(line) + ": " + what);
}

double parse_double(std::string_view value, std::size_t line) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(std::string(value), &consumed);
    if (consumed != value.size()) fail(line, "trailing junk in number '" + std::string(value) + "'");
    return v;
  } catch (const ConfigError&) {
    throw;
  } catch (const std::exception&) {
    fail(line, "bad number '" + std::string(value) + "'");
  }
}

std::uint64_t parse_u64(std::string_view value, std::size_t line) {
  std::uint64_t v = 0;
  const auto [p, ec] = std::from_chars(value.data(), value.data() + value.size(), v);
  if (ec != std::errc{} || p != value.data() + value.size()) {
    fail(line, "bad integer '" + std::string(value) + "'");
  }
  return v;
}

bool parse_bool(std::string_view value, std::size_t line) {
  if (util::iequals(value, "true") || value == "1" || util::iequals(value, "yes")) {
    return true;
  }
  if (util::iequals(value, "false") || value == "0" || util::iequals(value, "no")) {
    return false;
  }
  fail(line, "bad boolean '" + std::string(value) + "'");
}

}  // namespace

std::unique_ptr<BaseStore> LoadedConfig::make_store() const {
  if (disk_store) return std::make_unique<DiskBaseStore>(*disk_store);
  return std::make_unique<MemoryBaseStore>();
}

LoadedConfig load_config(std::istream& in) {
  LoadedConfig out;
  std::string section;     // "delta-server" or "site"
  std::string site_host;   // valid when section == "site"
  std::string raw_line;
  std::size_t line_no = 0;

  while (std::getline(in, raw_line)) {
    ++line_no;
    std::string_view line = util::trim(raw_line);
    if (line.empty() || line.starts_with('#')) continue;

    if (line.starts_with('[')) {
      if (!line.ends_with(']')) fail(line_no, "unterminated section header");
      const std::string_view inner = util::trim(line.substr(1, line.size() - 2));
      if (inner == "delta-server") {
        section = "delta-server";
      } else if (inner.starts_with("site ")) {
        section = "site";
        site_host = std::string(util::trim(inner.substr(5)));
        if (site_host.empty()) fail(line_no, "site section without host");
      } else {
        fail(line_no, "unknown section '" + std::string(inner) + "'");
      }
      continue;
    }

    // Strip trailing inline comments (a '#' preceded by whitespace, so a
    // '#' inside a partition regex is left alone).
    for (std::size_t i = 1; i < line.size(); ++i) {
      if (line[i] == '#' && (line[i - 1] == ' ' || line[i - 1] == '\t')) {
        line = util::trim(line.substr(0, i));
        break;
      }
    }

    const auto eq = line.find('=');
    if (eq == std::string_view::npos) fail(line_no, "expected key = value");
    const std::string key = std::string(util::trim(line.substr(0, eq)));
    const std::string value = std::string(util::trim(line.substr(eq + 1)));
    if (key.empty()) fail(line_no, "empty key");

    if (section == "delta-server") {
      auto& server = out.server;
      if (key == "anonymize") {
        server.anonymize = parse_bool(value, line_no);
      } else if (key == "compress") {
        server.compress_deltas = parse_bool(value, line_no);
      } else if (key == "sample-prob") {
        server.selector.sample_prob = parse_double(value, line_no);
      } else if (key == "max-samples") {
        server.selector.max_samples = parse_u64(value, line_no);
      } else if (key == "max-tries") {
        server.grouping.max_tries = parse_u64(value, line_no);
      } else if (key == "popular-fraction") {
        server.grouping.popular_fraction = parse_double(value, line_no);
      } else if (key == "match-threshold") {
        server.grouping.match_threshold = parse_double(value, line_no);
      } else if (key == "rebase-timeout-s") {
        server.rebase_timeout =
            static_cast<util::SimTime>(parse_u64(value, line_no)) * util::kSecond;
      } else if (key == "anonymizer-m") {
        server.anonymizer.min_common = parse_u64(value, line_no);
      } else if (key == "anonymizer-n") {
        server.anonymizer.required_docs = parse_u64(value, line_no);
      } else if (key == "delta-key-len") {
        server.transmit_params.key_len = parse_u64(value, line_no);
      } else if (key == "delta-index-step") {
        server.transmit_params.index_step = parse_u64(value, line_no);
      } else if (key == "delta-max-chain") {
        server.transmit_params.max_chain = parse_u64(value, line_no);
      } else if (key == "delta-min-match") {
        server.transmit_params.min_match = parse_u64(value, line_no);
      } else if (key == "delta-codec") {
        if (value == "hash-chain") {
          server.transmit_params.codec = delta::DeltaParams::Codec::kHashChain;
        } else if (value == "one-pass") {
          server.transmit_params = delta::DeltaParams::one_pass();
        } else if (value == "correcting") {
          server.transmit_params = delta::DeltaParams::correcting();
        } else {
          fail(line_no,
               "delta-codec must be 'hash-chain', 'one-pass' or 'correcting'");
        }
      } else if (key == "basic-rebase-ratio") {
        server.basic_rebase_ratio = parse_double(value, line_no);
      } else if (key == "basic-rebase-after") {
        server.basic_rebase_after = static_cast<int>(parse_u64(value, line_no));
      } else if (key == "published-history") {
        server.published_history = parse_u64(value, line_no);
      } else if (key == "seed") {
        server.seed = parse_u64(value, line_no);
      } else if (key == "server-shards") {
        server.shards = parse_u64(value, line_no);
        if (server.shards < 1) fail(line_no, "server-shards must be >= 1");
      } else if (key == "obs-sample-rate") {
        server.obs.sample_rate = parse_double(value, line_no);
        if (server.obs.sample_rate < 0.0 || server.obs.sample_rate > 1.0) {
          fail(line_no, "obs-sample-rate must be in [0, 1]");
        }
      } else if (key == "obs-histogram-buckets") {
        server.obs.histogram_sub_buckets = parse_u64(value, line_no);
        const std::size_t s = server.obs.histogram_sub_buckets;
        if (s == 0 || s > 64 || (s & (s - 1)) != 0) {
          fail(line_no, "obs-histogram-buckets must be a power of two in [1, 64]");
        }
      } else if (key == "obs-event-log") {
        server.obs.event_log_path = value;
      } else if (key == "obs-lock-profile") {
        server.obs.lock_profile = parse_bool(value, line_no);
      } else if (key == "base-store") {
        if (value == "memory") {
          out.disk_store.reset();
        } else if (value.starts_with("disk:")) {
          out.disk_store = std::filesystem::path(value.substr(5));
        } else {
          fail(line_no, "base-store must be 'memory' or 'disk:<path>'");
        }
      } else {
        fail(line_no, "unknown delta-server key '" + key + "'");
      }
    } else if (section == "site") {
      if (key == "partition") {
        // Reject here with a typed config error; an empty pattern would
        // otherwise trip PartitionRule's precondition mid-construction.
        if (value.empty()) fail(line_no, "partition rule pattern must not be empty");
        try {
          out.rules.add_rule(site_host, http::PartitionRule(value));
        } catch (const std::regex_error& e) {
          fail(line_no, std::string("bad partition regex: ") + e.what());
        }
      } else if (key == "manual-class") {
        out.manual_classes.emplace_back(site_host, value);
      } else {
        fail(line_no, "unknown site key '" + key + "'");
      }
    } else {
      fail(line_no, "key outside any section");
    }
  }

  // Cross-field sanity (same checks the components enforce, but with a
  // config-level error message).
  if (out.server.anonymizer.min_common > out.server.anonymizer.required_docs) {
    throw ConfigError("config: anonymizer-m must be <= anonymizer-n");
  }
  // Every delta parameterization the server will run with must be usable —
  // a bad deployment config fails here with a typed error, not inside an
  // encode precondition check mid-request.
  const std::pair<const char*, const delta::DeltaParams*> param_sets[] = {
      {"transmit (delta-*)", &out.server.transmit_params},
      {"anonymizer", &out.server.anonymizer.delta_params},
      {"grouping (light)", &out.server.grouping.light_params},
      {"selector (score)", &out.server.selector.score_params},
  };
  for (const auto& [label, params] : param_sets) {
    if (const auto problem = delta::validate(*params)) {
      throw ConfigError(std::string("config: ") + label +
                        " delta params invalid: " + *problem);
    }
  }
  // A sharded server needs one store per shard; a disk config hands each
  // shard its own subdirectory (one DiskBaseStore must own its directory —
  // two indices over one directory would double-count on restart recovery).
  if (out.disk_store) {
    const std::filesystem::path dir = *out.disk_store;
    const std::size_t shards = out.server.shards;
    out.server.store_factory = [dir, shards](std::size_t i) -> std::unique_ptr<BaseStore> {
      return std::make_unique<DiskBaseStore>(
          shards == 1 ? dir : dir / ("shard-" + std::to_string(i)));
    };
  }
  return out;
}

LoadedConfig load_config_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("config: cannot open " + path.string());
  return load_config(in);
}

std::string example_config() {
  return R"(# Class-based delta-encoding deployment configuration.
[delta-server]
anonymize        = true    # SV: scrub base-files before publication
compress         = true    # gzip deltas on the wire
sample-prob      = 0.2     # p: request sampling probability (SIV)
max-samples      = 8       # K: stored base-file candidates (SIV)
max-tries        = 8       # N: classes probed per request (SIII)
popular-fraction = 0.5     # a: share of tries on popular classes (SIII)
match-threshold  = 0.5     # light-delta/document ratio counting as a match
rebase-timeout-s = 120     # minimum seconds between group-rebases
anonymizer-m     = 2       # M: chunk kept if common with >= M documents
anonymizer-n     = 5       # N: documents observed before publication
base-store       = memory  # or disk:/var/lib/cbde/bases
server-shards    = 1       # independent delta-server shards (SVI-C capacity)

# Observability (docs/OBSERVABILITY.md): per-request trace sampling rate,
# histogram resolution (log-linear sub-buckets per octave, power of two),
# and an optional JSONL sink for the structured event log.
obs-sample-rate       = 0.01
obs-histogram-buckets = 4
# obs-event-log       = /var/log/cbde/events.jsonl
# obs-lock-profile    = true   # timed mutex acquisition -> cbde_lock_wait_seconds_*

# Transmission delta tuning (defaults are the Vdelta full parameterization;
# ranges are checked at load time).
delta-key-len    = 4       # match key width in bytes
delta-index-step = 1       # index every step-th base position
delta-max-chain  = 32      # candidate matches probed per position
delta-min-match  = 32      # shortest match worth a COPY
# delta-codec    = hash-chain  # or one-pass / correcting (O(1)-state rolling
#                              # matchers; selecting one loads its preset, so
#                              # put delta-* overrides after this line)

[site www.foo.com]
# Table I row 1 organization: /laptops?id=100
partition = ^/([^/?]+)\?(.*)$

[site www.adhoc.example]
# This site is organized ad hoc; pin a hint to a manual class (SIII).
manual-class = specials
)";
}

}  // namespace cbde::core
