// Storage backends for published base-files.
//
// The whole point of class-based operation (§II) is to make server-side
// base-file storage manageable; this module makes that storage a real,
// pluggable component. The delta-server keeps the *current* base of each
// class in memory (it is touched on every request) and pushes retained
// versions into a BaseStore:
//   * MemoryBaseStore — plain map; the default.
//   * DiskBaseStore   — one file per (class, version) under a directory,
//     written atomically (tmp + rename) with a checksummed header, so a
//     crashed or tampered file is detected on read instead of corrupting
//     client reconstructions.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>

#include "util/bytes.hpp"
#include "util/thread_annotations.hpp"

namespace cbde::core {

/// Thread-safety contract: implementations must be internally synchronized.
/// The delta-server mutates the store from serve() (under its own lock)
/// while tests and operational tooling inspect it through
/// DeltaServer::base_store() with no lock of their own; both built-in
/// stores therefore guard their state with an annotated mutex.
class BaseStore {
 public:
  virtual ~BaseStore() = default;

  virtual void put(std::uint64_t class_id, std::uint32_t version, util::BytesView base) = 0;
  /// nullopt if absent or (for disk) unreadable/corrupt.
  virtual std::optional<util::Bytes> get(std::uint64_t class_id,
                                         std::uint32_t version) const = 0;
  virtual void erase(std::uint64_t class_id, std::uint32_t version) = 0;
  virtual bool contains(std::uint64_t class_id, std::uint32_t version) const = 0;
  /// Total payload bytes currently stored.
  virtual std::size_t bytes_stored() const = 0;
  virtual std::size_t entries() const = 0;
};

class MemoryBaseStore final : public BaseStore {
 public:
  // The overrides stay unannotated (EXCLUDES and virt-specifiers do not mix
  // well across compilers); the GUARDED_BY fields below still force every
  // body to take the lock.
  void put(std::uint64_t class_id, std::uint32_t version, util::BytesView base) override;
  std::optional<util::Bytes> get(std::uint64_t class_id,
                                 std::uint32_t version) const override;
  void erase(std::uint64_t class_id, std::uint32_t version) override;
  bool contains(std::uint64_t class_id, std::uint32_t version) const override;
  std::size_t bytes_stored() const override {
    const LockGuard lock(mu_);
    return bytes_;
  }
  std::size_t entries() const override {
    const LockGuard lock(mu_);
    return store_.size();
  }

 private:
  /// Unlocked core of erase(), shared with put()'s replace path.
  void erase_locked(std::uint64_t class_id, std::uint32_t version) REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::pair<std::uint64_t, std::uint32_t>, util::Bytes> store_ GUARDED_BY(mu_);
  std::size_t bytes_ GUARDED_BY(mu_) = 0;
};

class DiskBaseStore final : public BaseStore {
 public:
  /// Creates `dir` if needed and indexes any valid base files already in it
  /// (restart recovery). Throws std::runtime_error if the directory is
  /// unusable.
  explicit DiskBaseStore(std::filesystem::path dir);

  void put(std::uint64_t class_id, std::uint32_t version, util::BytesView base) override;
  std::optional<util::Bytes> get(std::uint64_t class_id,
                                 std::uint32_t version) const override;
  void erase(std::uint64_t class_id, std::uint32_t version) override;
  bool contains(std::uint64_t class_id, std::uint32_t version) const override;
  std::size_t bytes_stored() const override {
    const LockGuard lock(mu_);
    return bytes_;
  }
  std::size_t entries() const override {
    const LockGuard lock(mu_);
    return index_.size();
  }

  /// Reads that failed checksum or framing validation.
  std::uint64_t corrupt_reads() const EXCLUDES(mu_) {
    const LockGuard lock(mu_);
    return corrupt_reads_;
  }

  const std::filesystem::path& directory() const { return dir_; }

 private:
  std::filesystem::path path_for(std::uint64_t class_id, std::uint32_t version) const;

  std::filesystem::path dir_;  // immutable after construction
  mutable Mutex mu_;
  /// (class, version) -> payload size.
  std::map<std::pair<std::uint64_t, std::uint32_t>, std::size_t> index_ GUARDED_BY(mu_);
  std::size_t bytes_ GUARDED_BY(mu_) = 0;
  mutable std::uint64_t corrupt_reads_ GUARDED_BY(mu_) = 0;
};

}  // namespace cbde::core
