// Base-file anonymization (paper §V).
//
// A class base-file is distributed to many clients, so private information
// (credit card numbers, session tokens) must be removed first. The paper's
// mechanism: delta-encode the base-file against N documents from N distinct
// users, count for each 4-byte chunk of the base-file how many of those
// documents shared it, and keep only chunks common with at least M of them
// (M = 0 no privacy, M = 1 the basic scheme, rule of thumb N >= 2M).
//
// The chunk commonality signal comes straight from the Vdelta matcher's
// COPY coverage (delta::EncodeResult::chunk_used), so anonymization reuses
// the same delta computations the selector needs — concurrently, as §V
// notes.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "delta/delta.hpp"
#include "obs/metrics_registry.hpp"
#include "util/bytes.hpp"

namespace cbde::core {

struct AnonymizerConfig {
  std::size_t min_common = 2;    ///< M — chunk kept if common with >= M docs
  std::size_t required_docs = 5; ///< N — documents (distinct users) to observe
  delta::DeltaParams delta_params = delta::DeltaParams::full();
};

/// Shared registry counters (per-class anonymizers all point at the owning
/// DeltaServer's handles, so counts aggregate). All-null (default) = no-op.
struct AnonymizerInstruments {
  obs::Counter* begins = nullptr;         ///< anonymization processes started
  obs::Counter* docs_observed = nullptr;  ///< documents counted toward N
};

class Anonymizer {
 public:
  explicit Anonymizer(AnonymizerConfig config);

  /// Start anonymizing `base`, produced for/by `owner_user` (whose own
  /// documents must not vouch for the base's chunks).
  void begin(util::Bytes base, std::uint64_t owner_user);

  /// Shared-base overload: aliases the caller's buffer (a refcount bump)
  /// instead of copying it, so starting a publication round from the
  /// working encoder's base costs no document copy.
  void begin(std::shared_ptr<const util::Bytes> base, std::uint64_t owner_user);

  /// True between begin() and finalize().
  bool in_progress() const { return in_progress_; }

  /// True once N documents from distinct non-owner users have been observed.
  bool ready() const { return in_progress_ && users_.size() >= config_.required_docs; }

  /// Feed a document. Ignored unless in progress, from a non-owner user not
  /// yet counted. Returns true if the document was counted.
  bool observe(std::uint64_t user_id, util::BytesView doc);

  /// Produce the anonymized base-file: chunks with a commonality counter
  /// below M are removed (including the sub-chunk tail, which can never be
  /// vouched for). Requires ready(); ends the process.
  util::Bytes finalize();

  std::size_t users_observed() const { return users_.size(); }
  void set_instruments(const AnonymizerInstruments& instr) { instr_ = instr; }
  const util::Bytes& pending_base() const;
  const std::vector<std::uint32_t>& counters() const { return counters_; }
  const AnonymizerConfig& config() const { return config_; }

 private:
  AnonymizerConfig config_;
  bool in_progress_ = false;
  /// Owns the pending base and its prebuilt match index: begin() pays the
  /// index build once, the N observe() encodes reuse it.
  std::unique_ptr<delta::Encoder> encoder_;
  std::uint64_t owner_ = 0;
  std::vector<std::uint32_t> counters_;
  std::unordered_set<std::uint64_t> users_;
  AnonymizerInstruments instr_;
};

/// Standalone form of the §V algorithm: anonymize `base` against `docs`
/// (assumed to come from distinct users), keeping chunks common with at
/// least `min_common` of them.
util::Bytes anonymize_against(
    util::BytesView base, const std::vector<util::Bytes>& docs, std::size_t min_common,
    const delta::DeltaParams& params = delta::DeltaParams::full());

}  // namespace cbde::core
