// Byte-exact accounting for the delta-encoding pipeline (Table II metrics).
#pragma once

#include <cstdint>

#include "util/stats.hpp"

namespace cbde::core {

struct PipelineMetrics {
  std::uint64_t requests = 0;
  std::uint64_t direct_responses = 0;  ///< served as the full document
  std::uint64_t delta_responses = 0;   ///< served as a delta

  /// Bytes the server would have sent without the scheme (sum of document
  /// sizes) — the paper's "Direct KB".
  std::uint64_t direct_bytes = 0;
  /// Response bytes actually sent (compressed deltas, or full documents for
  /// direct responses) — the paper's "Delta KB".
  std::uint64_t wire_bytes = 0;
  /// Base-file distribution bytes charged to the server (proxy-cache hits
  /// are accounted separately by the pipeline).
  std::uint64_t base_wire_bytes = 0;

  std::uint64_t group_rebases = 0;
  std::uint64_t basic_rebases = 0;
  std::uint64_t anonymizations_completed = 0;

  double cpu_us_total = 0;  ///< modeled delta-server CPU

  /// Fraction of outbound bytes saved vs. serving everything directly.
  double savings() const {
    if (direct_bytes == 0) return 0.0;
    const double sent = static_cast<double>(wire_bytes + base_wire_bytes);
    return 1.0 - sent / static_cast<double>(direct_bytes);
  }

  /// Mean compression factor: direct bytes / sent bytes.
  double reduction_factor() const {
    const auto sent = wire_bytes + base_wire_bytes;
    return sent == 0 ? 0.0
                     : static_cast<double>(direct_bytes) / static_cast<double>(sent);
  }
};

}  // namespace cbde::core
