// Byte-exact accounting for the delta-encoding pipeline (Table II metrics).
#pragma once

#include <cstdint>
#include <limits>

#include "util/stats.hpp"

namespace cbde::core {

struct PipelineMetrics {
  std::uint64_t requests = 0;
  std::uint64_t direct_responses = 0;  ///< served as the full document
  std::uint64_t delta_responses = 0;   ///< served as a delta

  /// Bytes the server would have sent without the scheme (sum of document
  /// sizes) — the paper's "Direct KB".
  std::uint64_t direct_bytes = 0;
  /// Response bytes actually sent (compressed deltas, or full documents for
  /// direct responses) — the paper's "Delta KB".
  std::uint64_t wire_bytes = 0;
  /// Base-file distribution bytes charged to the server (proxy-cache hits
  /// are accounted separately by the pipeline).
  std::uint64_t base_wire_bytes = 0;

  std::uint64_t group_rebases = 0;
  std::uint64_t basic_rebases = 0;
  std::uint64_t anonymizations_completed = 0;

  double cpu_us_total = 0;  ///< modeled delta-server CPU

  /// Fraction of outbound bytes saved vs. serving everything directly:
  /// 1 - sent/direct, where sent = wire_bytes + base_wire_bytes.
  ///
  /// Zero-denominator convention (shared with reduction_factor(), which is
  /// the same ratio inverted, so the two can never disagree about whether a
  /// run was a win):
  ///   * direct == 0 and sent == 0  ->  0.0   (no traffic, neutral)
  ///   * direct == 0 and sent  > 0  -> -inf   (pure overhead, e.g. a run
  ///                                           that only distributed bases)
  ///   * direct  > 0 and sent == 0  ->  1.0   (everything saved)
  double savings() const {
    const std::uint64_t sent = wire_bytes + base_wire_bytes;
    if (direct_bytes == 0) {
      return sent == 0 ? 0.0 : -std::numeric_limits<double>::infinity();
    }
    return 1.0 - static_cast<double>(sent) / static_cast<double>(direct_bytes);
  }

  /// Mean compression factor: direct bytes / sent bytes. Zero-denominator
  /// convention mirrors savings():
  ///   * direct == 0 and sent == 0  ->  1.0   (neutral)
  ///   * direct == 0 and sent  > 0  ->  0.0   (pure overhead)
  ///   * direct  > 0 and sent == 0  -> +inf   (everything saved)
  double reduction_factor() const {
    const std::uint64_t sent = wire_bytes + base_wire_bytes;
    if (sent == 0) {
      return direct_bytes == 0 ? 1.0 : std::numeric_limits<double>::infinity();
    }
    return static_cast<double>(direct_bytes) / static_cast<double>(sent);
  }

  /// Field-wise sum, used to aggregate per-shard ledgers.
  ///
  /// Cross-shard consistency convention (the sharded-server analogue of the
  /// zero-denominator convention above): every counter of one request is
  /// committed under a single shard's mutex, so a per-shard snapshot taken
  /// under that mutex satisfies all conservation identities (requests ==
  /// direct + delta responses, wire <= direct, ...). A merged snapshot is a
  /// sum of such per-shard-consistent snapshots taken one shard at a time in
  /// ascending shard order — requests that commit on an already-visited
  /// shard during the walk are simply not in this snapshot. Every identity
  /// that holds per shard therefore holds for the merge; what is NOT
  /// guaranteed is that the merge corresponds to one global instant.
  void merge(const PipelineMetrics& other) {
    requests += other.requests;
    direct_responses += other.direct_responses;
    delta_responses += other.delta_responses;
    direct_bytes += other.direct_bytes;
    wire_bytes += other.wire_bytes;
    base_wire_bytes += other.base_wire_bytes;
    group_rebases += other.group_rebases;
    basic_rebases += other.basic_rebases;
    anonymizations_completed += other.anonymizations_completed;
    cpu_us_total += other.cpu_us_total;
  }
};

}  // namespace cbde::core
