// Baseline traffic schemes the paper positions itself against (§I).
//
// Each baseline consumes the same request stream as the CBDE pipeline and
// accounts outbound bytes and server-side storage, so head-to-head
// comparisons (bench_baselines) are byte-exact:
//   * FullTransfer     — serve every dynamic response in full (status quo);
//   * GzipOnly         — compress each response; no history ("a factor of 2
//                        on average is thanks to compression");
//   * Hpp              — Douglis et al.'s HTML macro-preprocessing: the
//                        static template is cached per client, only the
//                        dynamic interpolation values travel per access
//                        ("network transfers 2 to 8 times smaller");
//   * ClasslessDelta   — basic delta-encoding: one base-file per
//                        (user, URL) pair, deltas against the previous
//                        snapshot; maximal redundancy exploitation at
//                        unbounded server storage (the scalability problem
//                        class-based operation removes).
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <string_view>

#include "http/url.hpp"
#include "server/origin.hpp"
#include "util/clock.hpp"

namespace cbde::core {

struct BaselineCounters {
  std::uint64_t requests = 0;
  std::uint64_t direct_bytes = 0;  ///< what full transfer would have sent
  std::uint64_t wire_bytes = 0;    ///< what this scheme actually sends

  // Zero-denominator convention matches core::PipelineMetrics so baseline
  // and pipeline numbers are directly comparable (see metrics.hpp):
  // neutral (0 savings, factor 1) only when *both* sides are zero;
  // -inf / 0 for pure overhead; 1 / +inf when everything was saved.
  double savings() const {
    if (direct_bytes == 0) {
      return wire_bytes == 0 ? 0.0 : -std::numeric_limits<double>::infinity();
    }
    return 1.0 - static_cast<double>(wire_bytes) / static_cast<double>(direct_bytes);
  }
  double reduction_factor() const {
    if (wire_bytes == 0) {
      return direct_bytes == 0 ? 1.0 : std::numeric_limits<double>::infinity();
    }
    return static_cast<double>(direct_bytes) / static_cast<double>(wire_bytes);
  }
};

class TrafficBaseline {
 public:
  explicit TrafficBaseline(const server::OriginServer& origin) : origin_(origin) {}
  virtual ~TrafficBaseline() = default;

  virtual std::string_view name() const = 0;

  /// Process one request; updates counters. Unknown URLs are ignored.
  void process(std::uint64_t user_id, const http::Url& url, util::SimTime now);

  /// Server-side base/template storage this scheme requires.
  virtual std::size_t storage_bytes() const { return 0; }

  const BaselineCounters& counters() const { return counters_; }

 protected:
  /// Scheme-specific wire cost for this response.
  virtual std::size_t wire_cost(std::uint64_t user_id, const http::Url& url,
                                const util::Bytes& doc, util::SimTime now) = 0;

  const server::OriginServer& origin_;
  BaselineCounters counters_;
};

/// Status quo: ship the whole document every time.
class FullTransferBaseline final : public TrafficBaseline {
 public:
  using TrafficBaseline::TrafficBaseline;
  std::string_view name() const override { return "full-transfer"; }

 protected:
  std::size_t wire_cost(std::uint64_t, const http::Url&, const util::Bytes& doc,
                        util::SimTime) override {
    return doc.size();
  }
};

/// Per-response compression, no history.
class GzipOnlyBaseline final : public TrafficBaseline {
 public:
  using TrafficBaseline::TrafficBaseline;
  std::string_view name() const override { return "gzip-only"; }

 protected:
  std::size_t wire_cost(std::uint64_t, const http::Url&, const util::Bytes& doc,
                        util::SimTime) override;
};

/// HPP: static template cached per (client, category); compressed dynamic
/// interpolation values per access.
class HppBaseline final : public TrafficBaseline {
 public:
  using TrafficBaseline::TrafficBaseline;
  std::string_view name() const override { return "hpp"; }
  std::size_t storage_bytes() const override { return 0; }  // templates are static

 protected:
  std::size_t wire_cost(std::uint64_t user_id, const http::Url& url,
                        const util::Bytes& doc, util::SimTime now) override;

 private:
  /// (user, host, category) pairs that already hold the macro template.
  std::set<std::tuple<std::uint64_t, std::string, std::size_t>> templates_held_;
};

/// Basic (classless) delta-encoding: one stored base per (user, URL).
class ClasslessDeltaBaseline final : public TrafficBaseline {
 public:
  using TrafficBaseline::TrafficBaseline;
  std::string_view name() const override { return "classless-delta"; }
  std::size_t storage_bytes() const override { return storage_; }
  std::size_t bases_stored() const { return bases_.size(); }

 protected:
  std::size_t wire_cost(std::uint64_t user_id, const http::Url& url,
                        const util::Bytes& doc, util::SimTime now) override;

 private:
  std::map<std::string, util::Bytes> bases_;
  std::size_t storage_ = 0;
};

}  // namespace cbde::core
