#include "core/simulation.hpp"

#include "util/contracts.hpp"
#include "util/hash.hpp"

namespace cbde::core {

Pipeline::Pipeline(const server::OriginServer& origin, PipelineConfig config,
                   http::RuleBook rules)
    : origin_(origin),
      config_(config),
      delta_server_(config.server, std::move(rules)),
      base_cache_(config.proxy_capacity_bytes) {
  // One telemetry domain for the whole stack: the proxy cache and the
  // pipeline-level counters register into the delta-server's Obs.
  base_cache_.set_instruments(proxy::CacheInstruments::attach(delta_server_.obs()));
  auto& reg = delta_server_.obs().registry();
  instr_.requests =
      &reg.counter("cbde_pipeline_requests_total", "Requests entering the pipeline");
  instr_.not_found = &reg.counter("cbde_pipeline_not_found_total",
                                  "URLs the origin could not resolve");
  instr_.verified = &reg.counter("cbde_pipeline_verified_total",
                                 "Client reconstructions verified byte-exact");
  instr_.verify_failures =
      &reg.counter("cbde_pipeline_verify_failures_total",
                   "Client reconstructions that mismatched the origin document");
}

void Pipeline::process(std::uint64_t user_id, const http::Url& url, util::SimTime now) {
  ++partial_.requests;
  instr_.requests->inc();
  const auto doc = origin_.document(url, user_id, now);
  if (!doc) {
    ++partial_.not_found;
    instr_.not_found->inc();
    return;
  }

  ServedResponse resp = delta_server_.serve(user_id, url, util::as_view(*doc), now);
  client::ClientAgent& agent = clients_[user_id];

  std::size_t base_transfer = 0;
  if (resp.mode == ServedResponse::Mode::kDelta && resp.base_needed) {
    // The client fetches the published base-file; it is cachable, so the
    // proxy-cache absorbs repeat fetches (paper §VI-B/C).
    const auto published = delta_server_.fetch_base(resp.class_id, resp.base_version);
    CBDE_ASSERT(published.has_value());
    const std::string cache_key = url.host + "#class" + std::to_string(resp.class_id) +
                                  "#v" + std::to_string(resp.base_version);
    bool from_proxy = false;
    if (config_.use_proxy) {
      if (base_cache_.get(cache_key)) {
        from_proxy = true;
      } else {
        base_cache_.put(cache_key, *published);
      }
    }
    (from_proxy ? partial_.proxy_base_bytes : partial_.origin_base_bytes) +=
        published->size();
    base_transfer = published->size();
    agent.store_base(client::BaseRef{resp.class_id, resp.base_version}, *published);
  }

  if (resp.mode == ServedResponse::Mode::kDelta && config_.verify_reconstruction) {
    const util::Bytes rebuilt =
        agent.reconstruct(client::BaseRef{resp.class_id, resp.base_version},
                          util::as_view(resp.wire_body), resp.wire_compressed);
    if (rebuilt == *doc) {
      ++partial_.verified;
      instr_.verified->inc();
    } else {
      ++partial_.verify_failures;
      instr_.verify_failures->inc();
      delta_server_.obs().emit(
          obs::EventKind::kDecodeFailure, now, resp.class_id,
          {{"user", std::to_string(user_id)},
           {"url", url.to_string()},
           {"base_version", std::to_string(resp.base_version)},
           {"delta_size", std::to_string(resp.delta_size)}});
    }
  }

  if (config_.measure_latency) {
    partial_.latency_direct_us.add(static_cast<double>(
        netsim::transfer_latency(doc->size(), config_.client_link).total()));
    double actual = static_cast<double>(
        netsim::transfer_latency(resp.wire_body.size(), config_.client_link).total());
    if (base_transfer > 0) {
      actual += static_cast<double>(
          netsim::transfer_latency(base_transfer, config_.client_link).total());
    }
    partial_.latency_actual_us.add(actual);
  }
}

void Pipeline::process_all(const std::vector<trace::Request>& requests) {
  for (const trace::Request& req : requests) {
    process(req.user_id, req.url, req.time);
  }
}

PipelineReport Pipeline::report() const {
  PipelineReport out = partial_;
  out.server = delta_server_.metrics();
  out.proxy = base_cache_.stats();
  out.storage_bytes = delta_server_.storage_bytes();
  out.classless_storage_bytes = delta_server_.classless_storage_bytes();
  out.num_classes = delta_server_.num_classes();
  return out;
}

}  // namespace cbde::core
