#include "core/baselines.hpp"

#include "compress/compressor.hpp"
#include "delta/delta.hpp"

namespace cbde::core {

void TrafficBaseline::process(std::uint64_t user_id, const http::Url& url,
                              util::SimTime now) {
  const auto doc = origin_.document(url, user_id, now);
  if (!doc) return;
  ++counters_.requests;
  counters_.direct_bytes += doc->size();
  counters_.wire_bytes += wire_cost(user_id, url, *doc, now);
}

std::size_t GzipOnlyBaseline::wire_cost(std::uint64_t, const http::Url&,
                                        const util::Bytes& doc, util::SimTime) {
  return std::min(compress::compressed_size(util::as_view(doc)), doc.size());
}

std::size_t HppBaseline::wire_cost(std::uint64_t user_id, const http::Url& url,
                                   const util::Bytes& doc, util::SimTime now) {
  const trace::SiteModel* site = origin_.site(url.host);
  const auto ref = site ? site->resolve(url) : std::nullopt;
  if (!site || !ref) return doc.size();  // not HPP-enabled: full transfer

  std::size_t cost = 0;
  if (templates_held_.insert({user_id, url.host, ref->category}).second) {
    // First access to this category: ship the macro template. It is static
    // content, so ordinary HTTP compression applies to it.
    const auto& tmpl = site->template_for(ref->category);
    cost += compress::compressed_size(
        util::as_view(util::to_bytes(tmpl.static_template())));
  }
  // Every access ships the compressed interpolation values.
  const util::Bytes payload = site->dynamic_payload(*ref, user_id, now);
  cost += std::min(compress::compressed_size(util::as_view(payload)), payload.size());
  return cost;
}

std::size_t ClasslessDeltaBaseline::wire_cost(std::uint64_t user_id, const http::Url& url,
                                              const util::Bytes& doc, util::SimTime) {
  const std::string key = std::to_string(user_id) + "|" + url.to_string();
  const auto it = bases_.find(key);
  std::size_t cost;
  if (it == bases_.end()) {
    // First access: full (compressed) transfer, then store the base.
    cost = std::min(compress::compressed_size(util::as_view(doc)), doc.size());
    storage_ += doc.size();
    bases_.emplace(key, doc);
    return cost;
  }
  const auto delta = delta::encode(util::as_view(it->second), util::as_view(doc)).delta;
  const auto wire = compress::compress(util::as_view(delta));
  cost = std::min(wire.size(), doc.size());
  storage_ += doc.size();
  storage_ -= it->second.size();
  it->second = doc;
  return cost;
}

}  // namespace cbde::core
