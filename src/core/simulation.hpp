// End-to-end pipeline simulation: the full Fig. 2 architecture.
//
//   clients (ClientAgent) -- proxy-cache (LruCache, caches base-files)
//        -- delta-server (DeltaServer) -- web-server (OriginServer)
//
// Every request flows through the real machinery: the origin generates the
// current snapshot, the delta-server groups/encodes, the client fetches the
// base-file (through the proxy) when needed and reconstructs the snapshot
// from base + delta. Reconstruction is verified byte-for-byte against the
// origin's document, so the simulation doubles as an integration check.
// Byte and latency accounting feeds Tables II-style results and the §VI-A
// latency claims.
#pragma once

#include <cstdint>
#include <map>

#include "client/agent.hpp"
#include "core/delta_server.hpp"
#include "netsim/tcp_model.hpp"
#include "proxy/cache.hpp"
#include "server/origin.hpp"
#include "trace/workload.hpp"
#include "util/stats.hpp"

namespace cbde::core {

struct PipelineConfig {
  DeltaServerConfig server;
  netsim::LinkProfile client_link = netsim::LinkProfile::modem();
  std::size_t proxy_capacity_bytes = 64 * 1024 * 1024;
  bool use_proxy = true;              ///< base-files distributed via proxy
  bool verify_reconstruction = true;  ///< compare client output to the origin doc
  bool measure_latency = true;
};

struct PipelineReport {
  PipelineMetrics server;           ///< delta-server accounting
  proxy::CacheStats proxy;          ///< base-file cache behaviour
  std::uint64_t requests = 0;
  std::uint64_t not_found = 0;      ///< URLs the origin could not resolve
  std::uint64_t verified = 0;
  std::uint64_t verify_failures = 0;

  /// Base-file bytes served by the origin vs. by the proxy.
  std::uint64_t origin_base_bytes = 0;
  std::uint64_t proxy_base_bytes = 0;

  util::Samples latency_direct_us;  ///< per-request latency without the scheme
  util::Samples latency_actual_us;  ///< with class-based delta-encoding

  std::size_t storage_bytes = 0;           ///< delta-server footprint
  std::size_t classless_storage_bytes = 0; ///< basic delta-encoding footprint
  std::size_t num_classes = 0;

  /// Outbound-traffic savings charged to the origin server (Table II):
  /// base-file bytes served by proxies do not count against the origin.
  double origin_savings() const {
    if (server.direct_bytes == 0) return 0.0;
    const double sent = static_cast<double>(server.wire_bytes + origin_base_bytes);
    return 1.0 - sent / static_cast<double>(server.direct_bytes);
  }

  double mean_latency_ratio() const {
    const double actual = latency_actual_us.mean();
    return actual == 0.0 ? 0.0 : latency_direct_us.mean() / actual;
  }
};

class Pipeline {
 public:
  /// `origin` must outlive the pipeline.
  Pipeline(const server::OriginServer& origin, PipelineConfig config, http::RuleBook rules);

  /// Process one request through the whole stack.
  void process(std::uint64_t user_id, const http::Url& url, util::SimTime now);

  void process_all(const std::vector<trace::Request>& requests);

  /// Snapshot of all accounting so far.
  PipelineReport report() const;

  const DeltaServer& delta_server() const { return delta_server_; }

  /// The stack's shared telemetry domain (scrape via obs().registry()).
  obs::Obs& obs() const { return delta_server_.obs(); }

 private:
  /// Pipeline-level registry handles (set once in the constructor).
  struct Instruments {
    obs::Counter* requests = nullptr;
    obs::Counter* not_found = nullptr;
    obs::Counter* verified = nullptr;
    obs::Counter* verify_failures = nullptr;
  };

  const server::OriginServer& origin_;
  PipelineConfig config_;
  DeltaServer delta_server_;
  proxy::LruCache base_cache_;
  std::map<std::uint64_t, client::ClientAgent> clients_;
  PipelineReport partial_;  // incrementally filled; server metrics copied on report()
  Instruments instr_;
};

}  // namespace cbde::core
