// Grouping documents into classes (paper §III).
//
// A request is grouped into an existing class if a *light* delta between the
// requested document and the class's base-file is below a threshold
// ("matching"). Search is hint-guided and bounded:
//   * only classes with the same server-part are eligible (a new class is
//     created otherwise);
//   * classes sharing the request's hint-part are preferred exclusively when
//     any exist;
//   * at most N classes are probed: the first a*N tries go to the most
//     popular eligible classes, the remaining (1-a)*N to random picks among
//     the rest; the search stops at the first match;
//   * administrators may pin (server-part, hint-part) pairs to manual
//     classes, bypassing the content test (the ad-hoc-site escape hatch).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "delta/delta.hpp"
#include "http/partition.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace cbde::core {

using ClassId = std::uint64_t;

struct GroupingConfig {
  std::size_t max_tries = 8;       ///< N — classes probed per request
  double popular_fraction = 0.5;   ///< a — share of tries spent on popular classes
  /// Matching: light delta size <= threshold * document size. The light
  /// estimator is deliberately coarse (large chunks, shallow search), so the
  /// threshold is looser than the "real" delta ratio one would accept.
  double match_threshold = 0.5;
  /// Parameterization the caller's per-class working encoders must be built
  /// with (group() itself just calls Encoder::encode_size on whatever the
  /// callback hands back).
  delta::DeltaParams light_params = delta::DeltaParams::light();
};

struct GroupingStats {
  std::uint64_t requests = 0;
  std::uint64_t classes_created = 0;
  std::uint64_t manual_hits = 0;
  util::Histogram tries{16};  ///< probes needed per grouped request

  /// Lossless aggregation of per-shard grouping statistics.
  void merge(const GroupingStats& other) {
    requests += other.requests;
    classes_created += other.classes_created;
    manual_hits += other.manual_hits;
    tries.merge(other.tries);
  }
};

class ClassManager {
 public:
  /// `id_first`/`id_stride` partition the class-id space across sharded
  /// managers: ids are id_first, id_first + id_stride, ... so a sharded
  /// DeltaServer can recover the owning shard as (id - 1) % num_shards
  /// while the unsharded default (1, 1) keeps the historical ids 1, 2, 3...
  ClassManager(GroupingConfig config, std::uint64_t seed, ClassId id_first = 1,
               ClassId id_stride = 1);

  struct Decision {
    ClassId id = 0;
    bool created = false;
    std::size_t tries = 0;  ///< delta estimations performed
  };

  /// Group a request. `encoder_of` must return the cached light-params
  /// encoder over a class's current working base-file (nullptr, or an
  /// encoder with an empty base, if it has none yet — the class is then
  /// skipped). The caller owns the encoders and rebuilds them on rebase;
  /// grouping itself never builds an index, it only runs the size-only
  /// match scan. Increments the chosen class's member count.
  Decision group(const http::UrlParts& parts, util::BytesView doc,
                 const std::function<const delta::Encoder*(ClassId)>& encoder_of);

  /// Administrator override: requests whose (server-part, hint-part) match
  /// are grouped into a dedicated class with no content test.
  ClassId add_manual_class(const std::string& server_part, const std::string& hint_part);

  std::size_t num_classes() const { return members_.size(); }
  std::uint64_t members_of(ClassId id) const;
  const GroupingStats& stats() const { return stats_; }

  /// Deterministic per-class seed assigned at creation, derived from the
  /// manager seed, the class's (server-part, hint-part) and its creation
  /// ordinal within that pair — never from a shared RNG stream. Because all
  /// requests of one (server-part, hint-part) land on one shard, the same
  /// logical class gets the same seed at any shard count, which is what
  /// keeps Table II byte accounting bit-exact across shard counts.
  std::uint64_t class_seed(ClassId id) const;

 private:
  struct ClassInfo {
    ClassId id;
    std::string hint_part;
  };

  ClassId create_class(const http::UrlParts& parts);
  /// Increment the member count of a class that is known to exist (every
  /// class is registered in members_ on creation, so no insert happens).
  void bump_members(ClassId id);
  /// Eligible candidates in probe order (popular first, then random fill).
  std::vector<ClassId> candidates(const std::string& server_part,
                                  const std::string& hint_part);
  /// Stateless mix of the manager seed with a (server-part, hint-part) pair
  /// and a per-pair ordinal; the basis for class seeds and shuffle seeds.
  std::uint64_t pair_seed(const std::string& server_part, const std::string& hint_part,
                          std::uint64_t ordinal) const;

  GroupingConfig config_;
  std::uint64_t seed_;
  ClassId next_id_;
  ClassId id_stride_;
  /// server-part -> classes created under it.
  std::map<std::string, std::vector<ClassInfo>> by_server_;
  std::map<ClassId, std::uint64_t> members_;
  std::map<ClassId, std::uint64_t> seeds_;
  std::map<std::pair<std::string, std::string>, ClassId> manual_;
  /// Per-(server-part, hint-part) counters driving the candidate shuffle and
  /// class seeds; keyed by the pair (not globally) so the sequence a given
  /// pair observes is independent of how other pairs interleave — i.e. of
  /// how classes are partitioned across shards.
  std::map<std::pair<std::string, std::string>, std::uint64_t> shuffle_ordinals_;
  std::map<std::pair<std::string, std::string>, std::uint64_t> creation_ordinals_;
  GroupingStats stats_;
};

}  // namespace cbde::core
