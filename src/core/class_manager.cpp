#include "core/class_manager.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/hash.hpp"

namespace cbde::core {

ClassManager::ClassManager(GroupingConfig config, std::uint64_t seed, ClassId id_first,
                           ClassId id_stride)
    : config_(config), seed_(seed), next_id_(id_first), id_stride_(id_stride) {
  CBDE_EXPECT(config_.max_tries >= 1);
  CBDE_EXPECT(config_.popular_fraction >= 0.0 && config_.popular_fraction <= 1.0);
  CBDE_EXPECT(config_.match_threshold > 0.0);
  CBDE_EXPECT(id_first >= 1 && id_stride >= 1);
}

ClassManager::Decision ClassManager::group(
    const http::UrlParts& parts, util::BytesView doc,
    const std::function<const delta::Encoder*(ClassId)>& encoder_of) {
  ++stats_.requests;

  // Manual grouping bypasses the content test entirely.
  if (const auto it = manual_.find({parts.server_part, parts.hint_part});
      it != manual_.end()) {
    ++stats_.manual_hits;
    bump_members(it->second);
    stats_.tries.add(0);
    return Decision{it->second, false, 0};
  }

  Decision decision;
  const auto order = candidates(parts.server_part, parts.hint_part);
  for (const ClassId id : order) {
    const delta::Encoder* encoder = encoder_of(id);
    if (encoder == nullptr || encoder->base().empty()) continue;
    ++decision.tries;
    const std::size_t estimate = encoder->encode_size(doc);
    if (static_cast<double>(estimate) <=
        config_.match_threshold * static_cast<double>(doc.size())) {
      decision.id = id;
      bump_members(id);
      stats_.tries.add(decision.tries);
      return decision;
    }
  }

  decision.id = create_class(parts);
  decision.created = true;
  bump_members(decision.id);
  stats_.tries.add(decision.tries);
  return decision;
}

void ClassManager::bump_members(ClassId id) {
  const auto it = members_.find(id);
  CBDE_ASSERT(it != members_.end());  // registered when the class was created
  ++it->second;
}

ClassId ClassManager::add_manual_class(const std::string& server_part,
                                       const std::string& hint_part) {
  const auto key = std::make_pair(server_part, hint_part);
  if (const auto it = manual_.find(key); it != manual_.end()) return it->second;
  const ClassId id = next_id_;
  next_id_ += id_stride_;
  members_.emplace(id, 0);
  seeds_.emplace(id, pair_seed(server_part, hint_part, creation_ordinals_[key]++));
  manual_.emplace(key, id);
  // Manual classes are also registered for the normal search so their
  // base-files participate in matching for other hints.
  by_server_[server_part].push_back(ClassInfo{id, hint_part});
  return id;
}

std::uint64_t ClassManager::members_of(ClassId id) const {
  const auto it = members_.find(id);
  return it == members_.end() ? 0 : it->second;
}

std::uint64_t ClassManager::class_seed(ClassId id) const {
  const auto it = seeds_.find(id);
  return it == seeds_.end() ? seed_ : it->second;
}

std::uint64_t ClassManager::pair_seed(const std::string& server_part,
                                      const std::string& hint_part,
                                      std::uint64_t ordinal) const {
  // hint is folded with the server hash as its FNV seed (not XORed) so
  // ("ab", "c") and ("a", "bc") mix differently.
  std::uint64_t state =
      seed_ ^ util::fnv1a64(hint_part, util::fnv1a64(server_part)) ^ ordinal;
  return util::splitmix64(state);
}

ClassId ClassManager::create_class(const http::UrlParts& parts) {
  const ClassId id = next_id_;
  next_id_ += id_stride_;
  members_.emplace(id, 0);
  const auto key = std::make_pair(parts.server_part, parts.hint_part);
  seeds_.emplace(id, pair_seed(parts.server_part, parts.hint_part,
                               creation_ordinals_[key]++));
  by_server_[parts.server_part].push_back(ClassInfo{id, parts.hint_part});
  ++stats_.classes_created;
  return id;
}

std::vector<ClassId> ClassManager::candidates(const std::string& server_part,
                                              const std::string& hint_part) {
  const auto server_it = by_server_.find(server_part);
  if (server_it == by_server_.end()) return {};  // new server-part: create class
  const auto& classes = server_it->second;

  // "If some classes have members whose hint-parts are the same with the
  // request's hint-part, the mechanism only considers those."
  std::vector<ClassId> eligible;
  eligible.reserve(classes.size());
  for (const ClassInfo& info : classes) {
    if (info.hint_part == hint_part) eligible.push_back(info.id);
  }
  if (eligible.empty()) {
    for (const ClassInfo& info : classes) eligible.push_back(info.id);
  }

  // Popular classes first for the first a*N tries. members_of (a lookup)
  // rather than members_[] so comparing an unseen id cannot insert a node.
  std::stable_sort(eligible.begin(), eligible.end(), [this](ClassId a, ClassId b) {
    return members_of(a) > members_of(b);
  });
  const std::size_t n_popular = std::min(
      eligible.size(),
      static_cast<std::size_t>(config_.popular_fraction *
                               static_cast<double>(config_.max_tries)));

  // "... and the last (1-a)*N consist of random selections among the rest."
  // The popular prefix stays put and the rest is shuffled in place: the
  // subrange shuffle draws exactly what shuffling a separate `rest` copy
  // drew, so the order is unchanged but the two range copies per request
  // are gone.
  // Seed the shuffle per (server-part, hint-part, request ordinal) instead of
  // drawing from one manager-wide stream: the draw a request sees then does
  // not depend on which other pairs' requests ran through this manager
  // before it, so a sharded server makes the same random picks as an
  // unsharded one (shard routing is by (server-part, hint-part)).
  util::Rng shuffle_rng(pair_seed(
      server_part, hint_part,
      // alloc: ok(one ordinal node per (server-part, hint-part) pair, amortized across its requests)
      0x5A5A5A5A00000000ull ^ shuffle_ordinals_[{server_part, hint_part}]++));
  shuffle_rng.shuffle(eligible.begin() + static_cast<std::ptrdiff_t>(n_popular),
                      eligible.end());
  if (eligible.size() > config_.max_tries) eligible.resize(config_.max_tries);
  return eligible;
}

}  // namespace cbde::core
