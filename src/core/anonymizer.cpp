#include "core/anonymizer.hpp"

#include "util/expect.hpp"

namespace cbde::core {
namespace {

util::Bytes remove_uncommon_chunks(util::BytesView base,
                                   const std::vector<std::uint32_t>& counters,
                                   std::size_t min_common) {
  if (min_common == 0) return util::Bytes(base.begin(), base.end());  // M=0: no privacy
  util::Bytes out;
  out.reserve(base.size());
  const std::size_t full_chunks = base.size() / delta::kAnonChunkSize;
  for (std::size_t c = 0; c < full_chunks; ++c) {
    if (counters[c] >= min_common) {
      const auto off = c * delta::kAnonChunkSize;
      util::append(out, base.subspan(off, delta::kAnonChunkSize));
    }
  }
  // The trailing partial chunk (if any) is never marked by the matcher's
  // full-containment rule, so it is dropped whenever M >= 1.
  return out;
}

}  // namespace

Anonymizer::Anonymizer(AnonymizerConfig config) : config_(config) {
  CBDE_EXPECT(config_.required_docs >= 1);
  CBDE_EXPECT(config_.min_common <= config_.required_docs);
}

void Anonymizer::begin(util::Bytes base, std::uint64_t owner_user) {
  base_ = std::move(base);
  owner_ = owner_user;
  counters_.assign((base_.size() + delta::kAnonChunkSize - 1) / delta::kAnonChunkSize, 0);
  users_.clear();
  in_progress_ = true;
}

bool Anonymizer::observe(std::uint64_t user_id, util::BytesView doc) {
  if (!in_progress_ || ready()) return false;
  if (user_id == owner_ || users_.contains(user_id)) return false;
  users_.insert(user_id);
  const auto result = delta::encode(util::as_view(base_), doc, config_.delta_params);
  CBDE_ASSERT(result.chunk_used.size() == counters_.size());
  for (std::size_t c = 0; c < counters_.size(); ++c) {
    if (result.chunk_used[c]) ++counters_[c];
  }
  return true;
}

util::Bytes Anonymizer::finalize() {
  CBDE_EXPECT(ready());
  in_progress_ = false;
  util::Bytes out = remove_uncommon_chunks(util::as_view(base_), counters_, config_.min_common);
  base_.clear();
  counters_.clear();
  users_.clear();
  return out;
}

util::Bytes anonymize_against(util::BytesView base, const std::vector<util::Bytes>& docs,
                              std::size_t min_common, const delta::DeltaParams& params) {
  std::vector<std::uint32_t> counters(
      (base.size() + delta::kAnonChunkSize - 1) / delta::kAnonChunkSize, 0);
  for (const auto& doc : docs) {
    const auto result = delta::encode(base, util::as_view(doc), params);
    for (std::size_t c = 0; c < counters.size(); ++c) {
      if (result.chunk_used[c]) ++counters[c];
    }
  }
  return remove_uncommon_chunks(base, counters, min_common);
}

}  // namespace cbde::core
