#include "core/anonymizer.hpp"

#include "util/contracts.hpp"

namespace cbde::core {
namespace {

util::Bytes remove_uncommon_chunks(util::BytesView base,
                                   const std::vector<std::uint32_t>& counters,
                                   std::size_t min_common) {
  if (min_common == 0) return util::Bytes(base.begin(), base.end());  // M=0: no privacy
  util::Bytes out;
  out.reserve(base.size());
  const std::size_t full_chunks = base.size() / delta::kAnonChunkSize;
  for (std::size_t c = 0; c < full_chunks; ++c) {
    if (counters[c] >= min_common) {
      const auto off = c * delta::kAnonChunkSize;
      util::append(out, base.subspan(off, delta::kAnonChunkSize));
    }
  }
  // The trailing partial chunk (if any) is never marked by the matcher's
  // full-containment rule, so it is dropped whenever M >= 1.
  return out;
}

}  // namespace

Anonymizer::Anonymizer(AnonymizerConfig config) : config_(config) {
  CBDE_EXPECT(config_.required_docs >= 1);
  CBDE_EXPECT(config_.min_common <= config_.required_docs);
}

void Anonymizer::begin(util::Bytes base, std::uint64_t owner_user) {
  begin(std::make_shared<const util::Bytes>(std::move(base)), owner_user);
}

void Anonymizer::begin(std::shared_ptr<const util::Bytes> base,
                       std::uint64_t owner_user) {
  encoder_ = std::make_unique<delta::Encoder>(std::move(base), config_.delta_params);
  owner_ = owner_user;
  counters_.assign(
      (encoder_->base().size() + delta::kAnonChunkSize - 1) / delta::kAnonChunkSize, 0);
  users_.clear();
  in_progress_ = true;
  if (instr_.begins != nullptr) instr_.begins->inc();
}

const util::Bytes& Anonymizer::pending_base() const {
  static const util::Bytes empty;
  return encoder_ ? encoder_->base() : empty;
}

bool Anonymizer::observe(std::uint64_t user_id, util::BytesView doc) {
  if (!in_progress_ || ready()) return false;
  if (user_id == owner_ || users_.contains(user_id)) return false;
  users_.insert(user_id);
  if (instr_.docs_observed != nullptr) instr_.docs_observed->inc();
  const auto result = encoder_->encode(doc);
  CBDE_ASSERT(result.chunk_used.size() == counters_.size());
  for (std::size_t c = 0; c < counters_.size(); ++c) {
    if (result.chunk_used[c]) ++counters_[c];
  }
  return true;
}

util::Bytes Anonymizer::finalize() {
  CBDE_EXPECT(ready());
  in_progress_ = false;
  util::Bytes out = remove_uncommon_chunks(util::as_view(encoder_->base()), counters_,
                                           config_.min_common);
  encoder_.reset();
  counters_.clear();
  users_.clear();
  return out;
}

util::Bytes anonymize_against(util::BytesView base, const std::vector<util::Bytes>& docs,
                              std::size_t min_common, const delta::DeltaParams& params) {
  std::vector<std::uint32_t> counters(
      (base.size() + delta::kAnonChunkSize - 1) / delta::kAnonChunkSize, 0);
  const delta::Encoder encoder(util::Bytes(base.begin(), base.end()), params);
  for (const auto& doc : docs) {
    const auto result = encoder.encode(util::as_view(doc));
    for (std::size_t c = 0; c < counters.size(); ++c) {
      if (result.chunk_used[c]) ++counters[c];
    }
  }
  return remove_uncommon_chunks(base, counters, min_common);
}

}  // namespace cbde::core
