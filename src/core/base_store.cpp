#include "core/base_store.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "util/contracts.hpp"
#include "util/hash.hpp"
#include "util/varint.hpp"

namespace cbde::core {

// ---------------------------------------------------------------- memory

void MemoryBaseStore::put(std::uint64_t class_id, std::uint32_t version,
                          util::BytesView base) {
  // Version 0 means "never published" throughout the pipeline; storing under
  // it would make the base unreachable via fetch_base().
  CBDE_EXPECT(version > 0);
  // Materialize the copy before taking mu_: the O(size) byte copy happens
  // unlocked and only the map splice runs inside the critical section.
  util::Bytes copy(base.begin(), base.end());
  const LockGuard lock(mu_);
  erase_locked(class_id, version);
  bytes_ += base.size();
  store_.emplace(std::make_pair(class_id, version), std::move(copy));
  CBDE_ASSERT_INVARIANT(store_.contains({class_id, version}));
}

std::optional<util::Bytes> MemoryBaseStore::get(std::uint64_t class_id,
                                                std::uint32_t version) const {
  const LockGuard lock(mu_);
  const auto it = store_.find({class_id, version});
  if (it == store_.end()) return std::nullopt;
  return it->second;
}

void MemoryBaseStore::erase(std::uint64_t class_id, std::uint32_t version) {
  const LockGuard lock(mu_);
  erase_locked(class_id, version);
}

void MemoryBaseStore::erase_locked(std::uint64_t class_id, std::uint32_t version) {
  const auto it = store_.find({class_id, version});
  if (it == store_.end()) return;
  bytes_ -= it->second.size();
  store_.erase(it);
}

bool MemoryBaseStore::contains(std::uint64_t class_id, std::uint32_t version) const {
  const LockGuard lock(mu_);
  return store_.contains({class_id, version});
}

// ---------------------------------------------------------------- disk

namespace {

// File layout: "CBBF" | uvarint payload_size | crc32(payload) LE | payload.
constexpr std::string_view kMagic = "CBBF";

util::Bytes frame(util::BytesView payload) {
  util::Bytes out;
  out.reserve(payload.size() + 16);
  util::append(out, kMagic);
  util::put_uvarint(out, payload.size());
  const std::uint32_t crc = util::crc32(payload);
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  util::append(out, payload);
  return out;
}

std::optional<util::Bytes> unframe(const util::Bytes& file) {
  std::size_t pos = 0;
  if (file.size() < 9 || util::as_string_view(util::as_view(file)).substr(0, 4) != kMagic) {
    return std::nullopt;
  }
  pos = 4;
  const auto size = util::get_uvarint(util::as_view(file), pos);
  if (!size) return std::nullopt;
  if (pos + 4 > file.size()) return std::nullopt;
  std::uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) crc |= static_cast<std::uint32_t>(file[pos++]) << (8 * i);
  if (*size != file.size() - pos) return std::nullopt;  // subtraction form: no wrap
  util::Bytes payload(file.begin() + static_cast<std::ptrdiff_t>(pos), file.end());
  if (util::crc32(util::as_view(payload)) != crc) return std::nullopt;
  return payload;
}

std::optional<util::Bytes> read_file(const std::filesystem::path& path) {
  // sema: ok(disk read is DiskBaseStore's contract; bounded by the stored base size)
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return util::Bytes(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

}  // namespace

DiskBaseStore::DiskBaseStore(std::filesystem::path dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec || !std::filesystem::is_directory(dir_)) {
    throw std::runtime_error("base store: cannot use directory " + dir_.string());
  }
  // Restart recovery: index whatever valid base files survive.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".base") continue;
    const std::string stem = entry.path().stem().string();
    const auto sep = stem.find('_');
    if (sep == std::string::npos) continue;
    std::uint64_t class_id = 0;
    std::uint32_t version = 0;
    const auto [p1, e1] =
        std::from_chars(stem.data(), stem.data() + sep, class_id);
    const auto [p2, e2] = std::from_chars(stem.data() + sep + 1,
                                          stem.data() + stem.size(), version);
    if (e1 != std::errc{} || e2 != std::errc{}) continue;
    const auto file = read_file(entry.path());
    if (!file) continue;
    const auto payload = unframe(*file);
    // Construction is single-threaded; the analysis exempts constructors,
    // so the recovery scan writes the guarded fields directly.
    if (!payload) {
      ++corrupt_reads_;
      continue;
    }
    index_[{class_id, version}] = payload->size();
    bytes_ += payload->size();
  }
}

std::filesystem::path DiskBaseStore::path_for(std::uint64_t class_id,
                                              std::uint32_t version) const {
  return dir_ / (std::to_string(class_id) + "_" + std::to_string(version) + ".base");
}

void DiskBaseStore::put(std::uint64_t class_id, std::uint32_t version,
                        util::BytesView base) {
  CBDE_EXPECT(version > 0);
  // The write itself is serialized too: concurrent put()s to the same
  // (class, version) would otherwise race on the shared .tmp name.
  const LockGuard lock(mu_);
  const auto path = path_for(class_id, version);
  const auto tmp = path.string() + ".tmp";
  {
    // sema: ok(tmp+rename write is the disk store's contract; bounded by the framed base size)
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("base store: cannot write " + tmp);
    const util::Bytes framed = frame(base);
    out.write(reinterpret_cast<const char*>(framed.data()),
              static_cast<std::streamsize>(framed.size()));
    if (!out) throw std::runtime_error("base store: short write to " + tmp);
  }
  // sema: ok(atomic POSIX replace; bounded metadata op completing the tmp+rename protocol)
  std::filesystem::rename(tmp, path);

  const auto key = std::make_pair(class_id, version);
  if (const auto it = index_.find(key); it != index_.end()) bytes_ -= it->second;
  index_[key] = base.size();
  bytes_ += base.size();
  CBDE_ASSERT_INVARIANT(index_.contains(key));
}

std::optional<util::Bytes> DiskBaseStore::get(std::uint64_t class_id,
                                              std::uint32_t version) const {
  const LockGuard lock(mu_);
  if (!index_.contains({class_id, version})) return std::nullopt;
  const auto file = read_file(path_for(class_id, version));
  if (!file) {
    ++corrupt_reads_;
    return std::nullopt;
  }
  auto payload = unframe(*file);
  if (!payload) ++corrupt_reads_;
  return payload;
}

void DiskBaseStore::erase(std::uint64_t class_id, std::uint32_t version) {
  const LockGuard lock(mu_);
  const auto key = std::make_pair(class_id, version);
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  bytes_ -= it->second;
  index_.erase(it);
  std::error_code ec;
  // sema: ok(bounded metadata op; history trim removes one file per publication)
  std::filesystem::remove(path_for(class_id, version), ec);
}

bool DiskBaseStore::contains(std::uint64_t class_id, std::uint32_t version) const {
  const LockGuard lock(mu_);
  return index_.contains({class_id, version});
}

}  // namespace cbde::core
