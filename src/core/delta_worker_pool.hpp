// Fixed-size worker pool driving DeltaServer::serve() concurrently.
//
// The paper's capacity experiment (§VI-C) measures the delta-server as a
// CPU-bound stage; on a multi-core host the natural deployment is a small
// pool of encode workers behind the accept loop. serve() is internally
// synchronized (three-phase: locked bookkeeping, unlocked encode+compress
// against an encoder snapshot, locked commit), so the pool needs no
// per-class knowledge — it just bounds concurrency and queue depth:
//   * `workers` threads pop submitted requests in FIFO order;
//   * the queue holds at most `queue_capacity` pending requests; submit()
//     blocks the producer when full (backpressure instead of unbounded
//     memory growth);
//   * each request's ServedResponse (or exception) is delivered through a
//     std::future.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/delta_server.hpp"

namespace cbde::core {

class DeltaWorkerPool {
 public:
  /// `server` must outlive the pool. `workers` >= 1; `queue_capacity` >= 1.
  DeltaWorkerPool(DeltaServer& server, std::size_t workers,
                  std::size_t queue_capacity = 128);

  /// Joins the workers; pending requests are still served first.
  ~DeltaWorkerPool();

  DeltaWorkerPool(const DeltaWorkerPool&) = delete;
  DeltaWorkerPool& operator=(const DeltaWorkerPool&) = delete;

  /// Enqueue one request. The document is copied into the job (the caller's
  /// buffer need not outlive the call). Blocks while the queue is full;
  /// throws std::runtime_error after shutdown().
  std::future<ServedResponse> submit(std::uint64_t user_id, http::Url url,
                                     util::Bytes doc, util::SimTime now);

  /// Stop accepting work, serve what is queued, join the threads.
  /// Idempotent; also run by the destructor.
  void shutdown();

  std::size_t workers() const { return threads_.size(); }

 private:
  struct Job {
    std::uint64_t user_id = 0;
    http::Url url;
    util::Bytes doc;
    util::SimTime now = 0;
    std::promise<ServedResponse> promise;
  };

  void worker_loop();

  DeltaServer& server_;
  const std::size_t capacity_;
  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Job> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace cbde::core
