// Fixed-size worker pool driving DeltaServer::serve() concurrently.
//
// The paper's capacity experiment (§VI-C) measures the delta-server as a
// CPU-bound stage; on a multi-core host the natural deployment is a small
// pool of encode workers behind the accept loop. serve() is internally
// synchronized (three-phase: locked bookkeeping, unlocked encode+compress
// against an encoder snapshot, locked commit), so the pool needs no
// per-class knowledge — it just bounds concurrency and queue depth:
//   * `workers` threads pop submitted requests in FIFO order;
//   * the queue holds at most `queue_capacity` pending requests; submit()
//     blocks the producer when full (backpressure instead of unbounded
//     memory growth);
//   * each request's ServedResponse (or exception) is delivered through a
//     std::future.
//
// Shutdown contract: shutdown() is idempotent and safe to race from any
// number of threads (exactly one joins the workers; the rest block until
// the join completes). Requests already queued are still served, so every
// future handed out by submit() becomes ready — with a value, an exception
// from serve(), or (if a worker dies) std::future_error/broken_promise.
// Nothing is leaked.
#pragma once

#include <cstdint>
#include <deque>
#include <future>
#include <thread>
#include <vector>

#include "core/delta_server.hpp"
#include "util/thread_annotations.hpp"

namespace cbde::core {

class DeltaWorkerPool {
 public:
  /// `server` must outlive the pool. `queue_capacity` >= 1. `workers` == 0
  /// picks recommended_workers(server); otherwise the exact count is used.
  DeltaWorkerPool(DeltaServer& server, std::size_t workers,
                  std::size_t queue_capacity = 128);

  /// Worker count that composes encode parallelism with shard parallelism:
  /// at least one worker per server shard (fewer would leave shards idle by
  /// construction), and at least the host's core count (so single-shard
  /// servers still overlap phase-2 encodes the way they always have).
  static std::size_t recommended_workers(const DeltaServer& server);

  /// Joins the workers; pending requests are still served first.
  ~DeltaWorkerPool();

  DeltaWorkerPool(const DeltaWorkerPool&) = delete;
  DeltaWorkerPool& operator=(const DeltaWorkerPool&) = delete;

  /// Enqueue one request. The document is copied into the job (the caller's
  /// buffer need not outlive the call). Blocks while the queue is full;
  /// throws std::runtime_error after shutdown().
  std::future<ServedResponse> submit(std::uint64_t user_id, http::Url url,
                                     util::Bytes doc, util::SimTime now) EXCLUDES(mu_);

  /// Stop accepting work, serve what is queued, join the threads.
  /// Idempotent and safe to call concurrently; every caller returns only
  /// after the workers are joined. Also run by the destructor.
  void shutdown() EXCLUDES(mu_);

  std::size_t workers() const { return worker_count_; }

 private:
  struct Job {
    std::uint64_t user_id = 0;
    http::Url url;
    util::Bytes doc;
    util::SimTime now = 0;
    std::promise<ServedResponse> promise;
    /// Sampled at submit time so queue wait lands in the same trace as the
    /// serve stages. The queue mutex orders the submitter's span-begin
    /// before the worker's span-end.
    std::shared_ptr<obs::TraceContext> trace;
    obs::SpanId queue_span = 0;
    std::uint64_t enqueue_us = 0;
  };

  /// Registry handles (into server.obs()); set once in the constructor.
  struct Instruments {
    obs::Counter* jobs = nullptr;
    obs::Counter* saturation = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Histogram* queue_wait = nullptr;
    /// Queue wait attributed to the shard that ultimately served the job
    /// (cbde_shard_<k>_queue_wait_microseconds, index == shard index): a
    /// single hot shard shows up as one deep per-shard wait distribution,
    /// which the aggregate queue_wait above averages away.
    std::vector<obs::Histogram*> shard_queue_wait;
  };

  void worker_loop() EXCLUDES(mu_);

  /// Stop path, split out so the lock requirement is explicit: flags the
  /// pool stopping and hands the worker threads to the (single) caller that
  /// owns the join.
  std::vector<std::thread> take_threads_for_join() REQUIRES(mu_);

  DeltaServer& server_;
  const std::size_t capacity_;
  const std::size_t worker_count_;
  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  CondVar join_done_cv_;
  Instruments instr_;  // immutable after construction
  std::deque<Job> queue_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
  /// True while the queue is running at capacity; drives one kPoolSaturated
  /// event per saturation episode instead of one per blocked submit.
  bool saturated_ GUARDED_BY(mu_) = false;
  bool join_done_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_ GUARDED_BY(mu_);
};

}  // namespace cbde::core
