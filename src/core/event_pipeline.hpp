// Event-driven end-to-end experiment: queueing at the server's access link.
//
// §VI-C closes with the observation that "in practice it is very common
// that the bottleneck resource at a web-server is the access link out of
// the web-site and not the CPU". This pipeline models exactly that contested
// resource: every response serializes through a shared server uplink
// (BitPipe, FIFO), then through the requesting client's private last-mile
// link; the server CPU (generation + delta work) is a FIFO resource too.
// Running the same request stream in direct mode vs CBDE mode shows the
// uplink saturating ~20-30x earlier without delta-encoding.
#pragma once

#include "core/delta_server.hpp"
#include "netsim/event.hpp"
#include "netsim/tcp_model.hpp"
#include "server/origin.hpp"
#include "trace/workload.hpp"
#include "util/stats.hpp"

namespace cbde::core {

struct EventPipelineConfig {
  bool use_cbde = true;
  DeltaServerConfig server;
  server::CpuModel origin_cpu;
  /// Parallel CPU workers at the server (the DeltaWorkerPool analogue in
  /// the simulation): requests queue FIFO for the earliest-free worker.
  std::size_t cpu_workers = 1;
  double uplink_bps = 10e6;  ///< the web-site's shared access link
  util::SimTime uplink_propagation = 10 * util::kMillisecond;
  /// Clients default to broadband so the *shared uplink* is the contested
  /// resource under study (per-client modem queues would mask it).
  netsim::LinkProfile client_link = netsim::LinkProfile::broadband();
  /// Base-file distribution is proxy-cachable (§VI-B): only the first fetch
  /// of each (class, version) crosses the site uplink; repeats are served
  /// by proxies and traverse only the client's own link.
  bool proxy_absorbs_bases = true;
};

struct EventPipelineResult {
  std::uint64_t completed = 0;
  util::Samples latency_us;        ///< request issued -> last byte at client
  double uplink_utilization = 0;   ///< busy fraction over the run horizon
  double cpu_utilization = 0;
  std::uint64_t uplink_bytes = 0;  ///< bytes pushed through the uplink
  util::SimTime horizon = 0;       ///< completion time of the last response
  double goodput_rps = 0;          ///< completed / horizon
};

class EventPipeline {
 public:
  /// `origin` must outlive the pipeline.
  EventPipeline(const server::OriginServer& origin, EventPipelineConfig config,
                http::RuleBook rules);

  /// Replay `requests` (sorted by time) through the queueing network.
  EventPipelineResult run(const std::vector<trace::Request>& requests);

  /// Telemetry domain (shared with the embedded delta-server).
  obs::Obs& obs() const { return delta_server_.obs(); }

 private:
  /// Queueing-network registry handles (set once in the constructor).
  struct Instruments {
    obs::Counter* completed = nullptr;
    obs::Counter* uplink_bytes = nullptr;
    obs::Histogram* latency = nullptr;
  };

  const server::OriginServer& origin_;
  EventPipelineConfig config_;
  DeltaServer delta_server_;
  Instruments instr_;
};

}  // namespace cbde::core
