// Administrator configuration for a delta-server deployment.
//
// §III: "Depending on the web-site, the administrator describes to the
// grouping mechanism how to partition URLs into parts using regular
// expressions" — and may "manually group URLs into classes" for ad-hoc
// sites. This loader turns a plain-text config file into a ready
// DeltaServerConfig + RuleBook, so a deployment is data, not code:
//
//   # cbde.conf
//   [delta-server]
//   anonymize        = true
//   compress         = true
//   sample-prob      = 0.2      # p  (SIV)
//   max-samples      = 8        # K  (SIV)
//   max-tries        = 8        # N  (SIII)
//   popular-fraction = 0.5      # a  (SIII)
//   match-threshold  = 0.5
//   rebase-timeout-s = 120
//   anonymizer-m     = 2        # M  (SV)
//   anonymizer-n     = 5        # N  (SV)
//   base-store       = disk:/var/lib/cbde/bases   # or "memory"
//
//   [site www.foo.com]
//   partition    = ^/([^/?]+)\?(.*)$
//   manual-class = specials        # pin this hint to a manual class
//
// Unknown keys are errors (typos must not silently fall back to defaults).
#pragma once

#include <filesystem>
#include <istream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/delta_server.hpp"
#include "http/partition.hpp"

namespace cbde::core {

class ConfigError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct LoadedConfig {
  DeltaServerConfig server;
  http::RuleBook rules;
  /// (host, hint) pairs to pin via ClassManager::add_manual_class.
  std::vector<std::pair<std::string, std::string>> manual_classes;
  /// Set when "base-store = disk:<path>" was given.
  std::optional<std::filesystem::path> disk_store;

  /// Construct the base store the config asked for.
  std::unique_ptr<BaseStore> make_store() const;
};

/// Parse a config stream. Throws ConfigError with a line number on any
/// syntax error, unknown key, bad value or invalid regex.
LoadedConfig load_config(std::istream& in);

/// Convenience: load from a file path.
LoadedConfig load_config_file(const std::filesystem::path& path);

/// A fully commented sample config (used by docs and tests).
std::string example_config();

}  // namespace cbde::core
