#include "core/basefile_selector.hpp"

#include <algorithm>
#include <limits>

#include "util/contracts.hpp"

namespace cbde::core {

BaseFileSelector::BaseFileSelector(SelectorConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  CBDE_EXPECT(config_.sample_prob >= 0.0 && config_.sample_prob <= 1.0);
  CBDE_EXPECT(config_.max_samples >= 1);
  CBDE_EXPECT(config_.random_evict_period >= 1);
}

void BaseFileSelector::observe(util::BytesView doc) {
  ++stats_.observed;
  if (instr_.observed != nullptr) instr_.observed->inc();
  if (!rng_.bernoulli(config_.sample_prob)) return;
  admit(doc);
}

void BaseFileSelector::admit(util::BytesView doc) {
  ++stats_.sampled;
  if (instr_.sampled != nullptr) instr_.sampled->inc();
  // One copy of the sampled document, shared by the reference set and the
  // candidate encoder — the kTwoSet policy used to materialize it twice.
  auto snapshot = std::make_shared<const util::Bytes>(doc.begin(), doc.end());
  if (config_.eviction == SelectorConfig::Eviction::kTwoSet) {
    insert_reference(snapshot);
  }
  insert_candidate(std::move(snapshot));
}

void BaseFileSelector::insert_candidate(std::shared_ptr<const util::Bytes> doc) {
  if (candidates_.size() >= config_.max_samples) evict_candidate();

  const std::size_t idx = candidates_.size();
  candidates_.push_back(
      std::make_unique<delta::Encoder>(std::move(doc), config_.score_params));
  const delta::Encoder& fresh = *candidates_[idx];

  if (config_.eviction == SelectorConfig::Eviction::kTwoSet) {
    // Column set is the reference set; score the new candidate against it.
    std::vector<double> row(references_.size(), 0.0);
    for (std::size_t j = 0; j < references_.size(); ++j) {
      row[j] = static_cast<double>(fresh.encode_size(util::as_view(*references_[j])));
    }
    score_matrix_.push_back(std::move(row));
    return;
  }

  // One-set policies: extend the square matrix with a new row and column.
  std::vector<double> row(idx + 1, 0.0);
  for (std::size_t j = 0; j < idx; ++j) {
    row[j] = static_cast<double>(fresh.encode_size(util::as_view(candidates_[j]->base())));
    score_matrix_[j].push_back(
        static_cast<double>(candidates_[j]->encode_size(util::as_view(fresh.base()))));
  }
  score_matrix_.push_back(std::move(row));
}

void BaseFileSelector::insert_reference(std::shared_ptr<const util::Bytes> doc) {
  if (references_.size() >= config_.max_samples) {
    // "a random sample is evicted from the other set"
    const std::size_t victim = static_cast<std::size_t>(rng_.next_below(references_.size()));
    references_.erase(references_.begin() + static_cast<std::ptrdiff_t>(victim));
    for (auto& row : score_matrix_) {
      row.erase(row.begin() + static_cast<std::ptrdiff_t>(victim));
    }
  }
  references_.push_back(std::move(doc));
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    score_matrix_[i].push_back(
        static_cast<double>(candidates_[i]->encode_size(util::as_view(*references_.back()))));
  }
}

double BaseFileSelector::score(std::size_t idx) const {
  double total = 0.0;
  const auto& row = score_matrix_[idx];
  for (std::size_t j = 0; j < row.size(); ++j) {
    if (config_.eviction != SelectorConfig::Eviction::kTwoSet && j == idx) continue;
    total += row[j];
  }
  return total;
}

std::size_t BaseFileSelector::best_index() const {
  CBDE_ASSERT(!candidates_.empty());
  std::size_t best = 0;
  double best_score = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    const double s = score(i);
    if (s < best_score) {
      best_score = s;
      best = i;
    }
  }
  return best;
}

void BaseFileSelector::evict_candidate() {
  ++stats_.evictions;
  if (instr_.evictions != nullptr) instr_.evictions->inc();
  const bool random_turn =
      config_.eviction == SelectorConfig::Eviction::kPeriodicRandom &&
      stats_.evictions % config_.random_evict_period == 0;
  if (random_turn && candidates_.size() > 1) {
    // Random eviction, "excluding the current base-file" (the best sample).
    ++stats_.random_evictions;
    const std::size_t keep = best_index();
    std::size_t victim =
        static_cast<std::size_t>(rng_.next_below(candidates_.size() - 1));
    if (victim >= keep) ++victim;
    remove_candidate(victim);
    return;
  }
  // Evict the document that maximizes the sum of deltas (the worst).
  std::size_t worst = 0;
  double worst_score = -1.0;
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    const double s = score(i);
    if (s > worst_score) {
      worst_score = s;
      worst = i;
    }
  }
  remove_candidate(worst);
}

void BaseFileSelector::remove_candidate(std::size_t idx) {
  CBDE_ASSERT(idx < candidates_.size());
  candidates_.erase(candidates_.begin() + static_cast<std::ptrdiff_t>(idx));
  score_matrix_.erase(score_matrix_.begin() + static_cast<std::ptrdiff_t>(idx));
  if (config_.eviction != SelectorConfig::Eviction::kTwoSet) {
    for (auto& row : score_matrix_) {
      row.erase(row.begin() + static_cast<std::ptrdiff_t>(idx));
    }
  }
}

const util::Bytes* BaseFileSelector::best() const {
  if (candidates_.empty()) return nullptr;
  return &candidates_[best_index()]->base();
}

double BaseFileSelector::best_score() const {
  if (candidates_.size() < 2) return 0.0;
  return score(best_index());
}

std::size_t BaseFileSelector::stored_bytes() const {
  std::size_t total = 0;
  for (const auto& candidate : candidates_) total += candidate->base().size();
  for (const auto& doc : references_) {
    // A reference still sharing its buffer with a candidate encoder is one
    // allocation, not two; count each distinct buffer once.
    bool shared_with_candidate = false;
    for (const auto& candidate : candidates_) {
      if (candidate->shared_base().get() == doc.get()) {
        shared_with_candidate = true;
        break;
      }
    }
    if (!shared_with_candidate) total += doc->size();
  }
  return total;
}

void BaseFileSelector::flush() {
  candidates_.clear();
  score_matrix_.clear();
  references_.clear();
}

void FirstResponsePolicy::observe(util::BytesView doc) {
  if (!base_) base_ = util::Bytes(doc.begin(), doc.end());
}

const util::Bytes* FirstResponsePolicy::current_base() const {
  return base_ ? &*base_ : nullptr;
}

RandomizedPolicy::RandomizedPolicy(SelectorConfig config, std::uint64_t seed)
    : selector_(config, seed) {}

void RandomizedPolicy::observe(util::BytesView doc) {
  if (first_) {
    selector_.admit(doc);
    first_ = false;
    return;
  }
  selector_.observe(doc);
}

const util::Bytes* RandomizedPolicy::current_base() const { return selector_.best(); }

OnlineOptimalPolicy::OnlineOptimalPolicy(delta::DeltaParams score_params)
    : score_params_(score_params) {}

void OnlineOptimalPolicy::observe(util::BytesView doc) {
  const std::size_t idx = docs_.size();
  docs_.push_back(std::make_unique<delta::Encoder>(util::Bytes(doc.begin(), doc.end()),
                                                   score_params_));
  const delta::Encoder& fresh = *docs_[idx];
  score_.push_back(0.0);
  for (std::size_t j = 0; j < idx; ++j) {
    score_[idx] += static_cast<double>(fresh.encode_size(util::as_view(docs_[j]->base())));
    score_[j] += static_cast<double>(docs_[j]->encode_size(util::as_view(fresh.base())));
  }
  best_ = static_cast<std::size_t>(
      std::min_element(score_.begin(), score_.end()) - score_.begin());
}

const util::Bytes* OnlineOptimalPolicy::current_base() const {
  return docs_.empty() ? nullptr : &docs_[best_]->base();
}

std::size_t offline_optimal_index(const std::vector<util::Bytes>& docs,
                                  const delta::DeltaParams& score_params) {
  CBDE_EXPECT(!docs.empty());
  std::size_t best = 0;
  double best_score = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < docs.size(); ++i) {
    // One index build per base, then size-only scans against every target.
    // Non-owning alias of the caller's buffer (the encoder dies inside this
    // scope) — passing docs[i] by value copied every document once.
    const delta::Encoder encoder(
        std::shared_ptr<const util::Bytes>(std::shared_ptr<void>(), &docs[i]),
        score_params);
    double total = 0.0;
    for (std::size_t j = 0; j < docs.size(); ++j) {
      if (i == j) continue;
      total += static_cast<double>(encoder.encode_size(util::as_view(docs[j])));
    }
    if (total < best_score) {
      best_score = total;
      best = i;
    }
  }
  return best;
}

}  // namespace cbde::core
