#include "core/delta_worker_pool.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/contracts.hpp"

namespace cbde::core {

std::size_t DeltaWorkerPool::recommended_workers(const DeltaServer& server) {
  const std::size_t cores = std::thread::hardware_concurrency();  // may be 0
  return std::max({server.num_shards(), cores, std::size_t{1}});
}

DeltaWorkerPool::DeltaWorkerPool(DeltaServer& server, std::size_t workers,
                                 std::size_t queue_capacity)
    : server_(server),
      capacity_(queue_capacity),
      worker_count_(workers == 0 ? recommended_workers(server) : workers) {
  CBDE_EXPECT(queue_capacity >= 1);
  auto& reg = server_.obs().registry();
  instr_.jobs = &reg.counter("cbde_pool_jobs_total", "Requests accepted by the pool");
  instr_.saturation =
      &reg.counter("cbde_pool_saturation_total",
                   "Submits that blocked on a full queue (backpressure)");
  instr_.queue_depth = &reg.gauge("cbde_pool_queue_depth", "Jobs waiting in the queue");
  instr_.queue_wait =
      &server_.obs().histogram("cbde_pool_queue_wait_microseconds",
                               "Wall time a job spent queued before a worker took it");
  instr_.shard_queue_wait.reserve(server_.num_shards());
  for (std::size_t i = 0; i < server_.num_shards(); ++i) {
    instr_.shard_queue_wait.push_back(&server_.obs().histogram(
        obs::shard_metric_name("cbde_shard_queue_wait_microseconds", i),
        "Queue wait of jobs served by this shard"));
  }
  if (server_.obs().config().lock_profile) {
    // Wired before the workers spawn, so no locker can miss the cell.
    mu_.attach_wait_profile(&server_.obs().lock_wait_profile(
        "cbde_lock_wait_seconds_pool_queue",
        "Wait to acquire the worker pool's queue mutex"));
  }
  threads_.reserve(worker_count_);
  for (std::size_t i = 0; i < worker_count_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

DeltaWorkerPool::~DeltaWorkerPool() { shutdown(); }

std::future<ServedResponse> DeltaWorkerPool::submit(std::uint64_t user_id,
                                                    http::Url url, util::Bytes doc,
                                                    util::SimTime now) {
  Job job;
  job.user_id = user_id;
  job.url = std::move(url);
  job.doc = std::move(doc);
  job.now = now;
  job.trace = server_.obs().maybe_trace();
  if (job.trace != nullptr) job.queue_span = job.trace->begin("queue");
  std::future<ServedResponse> result = job.promise.get_future();
  {
    const LockGuard lock(mu_);
    if (queue_.size() >= capacity_ && !stopping_) {
      instr_.saturation->inc();
      if (!saturated_) {
        saturated_ = true;
        server_.obs().emit(obs::EventKind::kPoolSaturated, now, 0,
                           {{"queue_capacity", std::to_string(capacity_)},
                            {"workers", std::to_string(worker_count_)}});
      }
      while (queue_.size() >= capacity_ && !stopping_) not_full_.wait(mu_);
    } else {
      saturated_ = false;
    }
    if (stopping_) throw std::runtime_error("DeltaWorkerPool: submit after shutdown");
    job.enqueue_us = obs::now_us();
    queue_.push_back(std::move(job));
    CBDE_ASSERT_INVARIANT(queue_.size() <= capacity_);
    instr_.jobs->inc();
    instr_.queue_depth->set(static_cast<std::int64_t>(queue_.size()));
  }
  not_empty_.notify_one();
  return result;
}

void DeltaWorkerPool::worker_loop() {
  for (;;) {
    Job job;
    {
      const LockGuard lock(mu_);
      while (queue_.empty() && !stopping_) not_empty_.wait(mu_);
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      instr_.queue_depth->set(static_cast<std::int64_t>(queue_.size()));
    }
    not_full_.notify_one();
    const std::uint64_t wait_us = obs::now_us() - job.enqueue_us;
    instr_.queue_wait->observe(wait_us);
    if (job.trace != nullptr) job.trace->end(job.queue_span);
    try {
      ServedResponse resp = server_.serve(job.user_id, job.url, util::as_view(job.doc),
                                          job.now, std::move(job.trace));
      // Attribute the wait to the shard that served the job (known only now).
      instr_.shard_queue_wait[resp.shard]->observe(wait_us);
      job.promise.set_value(std::move(resp));
    } catch (...) {
      job.promise.set_exception(std::current_exception());
    }
  }
}

std::vector<std::thread> DeltaWorkerPool::take_threads_for_join() {
  stopping_ = true;
  std::vector<std::thread> taken;
  taken.swap(threads_);
  return taken;
}

void DeltaWorkerPool::shutdown() {
  std::vector<std::thread> to_join;
  {
    const LockGuard lock(mu_);
    if (stopping_) {
      // Another caller owns the join (or already finished it). Wait it out
      // so that *every* shutdown() return means the workers are gone —
      // returning early here was a double-join race before PR 3.
      while (!join_done_) join_done_cv_.wait(mu_);
      return;
    }
    to_join = take_threads_for_join();
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& t : to_join) {
    if (t.joinable()) t.join();
  }
  {
    const LockGuard lock(mu_);
    join_done_ = true;
  }
  join_done_cv_.notify_all();
}

}  // namespace cbde::core
