#include "core/delta_worker_pool.hpp"

#include <stdexcept>

#include "util/expect.hpp"

namespace cbde::core {

DeltaWorkerPool::DeltaWorkerPool(DeltaServer& server, std::size_t workers,
                                 std::size_t queue_capacity)
    : server_(server), capacity_(queue_capacity), worker_count_(workers) {
  CBDE_EXPECT(workers >= 1);
  CBDE_EXPECT(queue_capacity >= 1);
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

DeltaWorkerPool::~DeltaWorkerPool() { shutdown(); }

std::future<ServedResponse> DeltaWorkerPool::submit(std::uint64_t user_id,
                                                    http::Url url, util::Bytes doc,
                                                    util::SimTime now) {
  Job job;
  job.user_id = user_id;
  job.url = std::move(url);
  job.doc = std::move(doc);
  job.now = now;
  std::future<ServedResponse> result = job.promise.get_future();
  {
    const LockGuard lock(mu_);
    while (queue_.size() >= capacity_ && !stopping_) not_full_.wait(mu_);
    if (stopping_) throw std::runtime_error("DeltaWorkerPool: submit after shutdown");
    queue_.push_back(std::move(job));
  }
  not_empty_.notify_one();
  return result;
}

void DeltaWorkerPool::worker_loop() {
  for (;;) {
    Job job;
    {
      const LockGuard lock(mu_);
      while (queue_.empty() && !stopping_) not_empty_.wait(mu_);
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    try {
      job.promise.set_value(
          server_.serve(job.user_id, job.url, util::as_view(job.doc), job.now));
    } catch (...) {
      job.promise.set_exception(std::current_exception());
    }
  }
}

std::vector<std::thread> DeltaWorkerPool::take_threads_for_join() {
  stopping_ = true;
  std::vector<std::thread> taken;
  taken.swap(threads_);
  return taken;
}

void DeltaWorkerPool::shutdown() {
  std::vector<std::thread> to_join;
  {
    const LockGuard lock(mu_);
    if (stopping_) {
      // Another caller owns the join (or already finished it). Wait it out
      // so that *every* shutdown() return means the workers are gone —
      // returning early here was a double-join race before PR 3.
      while (!join_done_) join_done_cv_.wait(mu_);
      return;
    }
    to_join = take_threads_for_join();
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& t : to_join) {
    if (t.joinable()) t.join();
  }
  {
    const LockGuard lock(mu_);
    join_done_ = true;
  }
  join_done_cv_.notify_all();
}

}  // namespace cbde::core
