#include "core/delta_worker_pool.hpp"

#include <stdexcept>

#include "util/expect.hpp"

namespace cbde::core {

DeltaWorkerPool::DeltaWorkerPool(DeltaServer& server, std::size_t workers,
                                 std::size_t queue_capacity)
    : server_(server), capacity_(queue_capacity) {
  CBDE_EXPECT(workers >= 1);
  CBDE_EXPECT(queue_capacity >= 1);
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

DeltaWorkerPool::~DeltaWorkerPool() { shutdown(); }

std::future<ServedResponse> DeltaWorkerPool::submit(std::uint64_t user_id,
                                                    http::Url url, util::Bytes doc,
                                                    util::SimTime now) {
  Job job;
  job.user_id = user_id;
  job.url = std::move(url);
  job.doc = std::move(doc);
  job.now = now;
  std::future<ServedResponse> result = job.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] { return queue_.size() < capacity_ || stopping_; });
    if (stopping_) throw std::runtime_error("DeltaWorkerPool: submit after shutdown");
    queue_.push_back(std::move(job));
  }
  not_empty_.notify_one();
  return result;
}

void DeltaWorkerPool::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    try {
      job.promise.set_value(
          server_.serve(job.user_id, job.url, util::as_view(job.doc), job.now));
    } catch (...) {
      job.promise.set_exception(std::current_exception());
    }
  }
}

void DeltaWorkerPool::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && threads_.empty()) return;
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

}  // namespace cbde::core
