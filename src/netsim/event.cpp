#include "netsim/event.hpp"

#include <algorithm>

namespace cbde::netsim {

void EventQueue::schedule(util::SimTime at, Callback fn) {
  CBDE_EXPECT(at >= now_);
  heap_.push_back(Entry{at, next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

bool EventQueue::run_next() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  now_ = entry.at;
  entry.fn();
  return true;
}

std::size_t EventQueue::run(std::size_t limit) {
  std::size_t fired = 0;
  while (fired < limit && run_next()) ++fired;
  return fired;
}

void EventQueue::run_until(util::SimTime until) {
  while (!heap_.empty() && heap_.front().at <= until) run_next();
  now_ = std::max(now_, until);
}

}  // namespace cbde::netsim
