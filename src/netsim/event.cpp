#include "netsim/event.hpp"

namespace cbde::netsim {

void EventQueue::schedule(util::SimTime at, Callback fn) {
  CBDE_EXPECT(at >= now_);
  heap_.push(Entry{at, next_seq_++, std::move(fn)});
}

bool EventQueue::run_next() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast on the handle —
  // standard practice for move-only payloads in a pq we immediately pop.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  now_ = entry.at;
  entry.fn();
  return true;
}

std::size_t EventQueue::run(std::size_t limit) {
  std::size_t fired = 0;
  while (fired < limit && run_next()) ++fired;
  return fired;
}

void EventQueue::run_until(util::SimTime until) {
  while (!heap_.empty() && heap_.top().at <= until) run_next();
  now_ = std::max(now_, until);
}

}  // namespace cbde::netsim
