// Discrete-event engine for the network simulation.
//
// A minimal but strict event queue: events fire in (time, insertion order),
// callbacks may schedule further events, and time never runs backwards.
// Everything is deterministic — no wall clock. EventQueue, FifoResource and
// BitPipe are single-threaded by design; PooledResource (which models the
// delta-server's encode worker pool and is the one resource a threaded
// harness shares) is internally synchronized with an annotated mutex.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/clock.hpp"
#include "util/contracts.hpp"
#include "util/thread_annotations.hpp"

namespace cbde::netsim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` at absolute time `at` (>= now).
  void schedule(util::SimTime at, Callback fn);

  /// Schedule `fn` after `delay` (>= 0).
  void schedule_in(util::SimTime delay, Callback fn) { schedule(now_ + delay, std::move(fn)); }

  /// Fire the earliest event; returns false if none remain.
  bool run_next();

  /// Run events until the queue drains or `limit` events have fired.
  /// Returns the number of events fired.
  std::size_t run(std::size_t limit = SIZE_MAX);

  /// Run all events with firing time <= `until` (events scheduled during
  /// the run are honored if they fall within the horizon).
  void run_until(util::SimTime until);

  util::SimTime now() const { return now_; }
  std::size_t pending() const { return heap_.size(); }

 private:
  struct Entry {
    util::SimTime at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Min-heap over (at, seq), owned directly as a vector so the earliest
  // entry can be *moved* out on pop (priority_queue::top() is const, which
  // forces a const_cast for move-only payloads — UB bait).
  std::vector<Entry> heap_;
  util::SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

/// Single-server FIFO resource (a CPU, a disk): work is served one job at a
/// time in arrival order. busy_until-based, O(1) per job.
class FifoResource {
 public:
  /// A job arriving at `now` needing `service` time: returns its completion
  /// time (start = max(now, previous completion)).
  util::SimTime submit(util::SimTime now, util::SimTime service) {
    CBDE_EXPECT(service >= 0);
    const util::SimTime start = std::max(now, busy_until_);
    busy_until_ = start + service;
    busy_time_ += service;
    ++jobs_;
    return busy_until_;
  }

  util::SimTime busy_until() const { return busy_until_; }
  /// Total service time performed (for utilization = busy_time / horizon).
  util::SimTime busy_time() const { return busy_time_; }
  std::uint64_t jobs() const { return jobs_; }

 private:
  util::SimTime busy_until_ = 0;
  util::SimTime busy_time_ = 0;
  std::uint64_t jobs_ = 0;
};

/// c-server FIFO resource (an M/G/c-style worker pool): jobs are taken in
/// arrival order and each runs on the earliest-available of `servers`
/// identical servers. With servers == 1 this degenerates to FifoResource.
/// Models the delta-server's encode worker pool in the capacity experiment.
///
/// Unlike the rest of this header, PooledResource is thread-safe: a
/// threaded capacity harness charges CPU time to one shared pool from
/// several workers. Single-threaded callers pay one uncontended lock per
/// job, which is noise next to the min-scan.
class PooledResource {
 public:
  explicit PooledResource(std::size_t servers) : busy_until_(servers, 0) {
    CBDE_EXPECT(servers >= 1);
  }

  /// A job arriving at `now` needing `service` time: returns its completion
  /// time (start = max(now, earliest server free time)).
  util::SimTime submit(util::SimTime now, util::SimTime service) EXCLUDES(mu_) {
    CBDE_EXPECT(service >= 0);
    const LockGuard lock(mu_);
    const auto it = std::min_element(busy_until_.begin(), busy_until_.end());
    const util::SimTime start = std::max(now, *it);
    *it = start + service;
    busy_time_ += service;
    ++jobs_;
    return *it;
  }

  std::size_t servers() const EXCLUDES(mu_) {
    const LockGuard lock(mu_);
    return busy_until_.size();
  }
  /// Total service time performed across all servers; utilization of the
  /// pool over a horizon H is busy_time / (H * servers).
  util::SimTime busy_time() const EXCLUDES(mu_) {
    const LockGuard lock(mu_);
    return busy_time_;
  }
  std::uint64_t jobs() const EXCLUDES(mu_) {
    const LockGuard lock(mu_);
    return jobs_;
  }

 private:
  mutable Mutex mu_;
  std::vector<util::SimTime> busy_until_ GUARDED_BY(mu_);
  util::SimTime busy_time_ GUARDED_BY(mu_) = 0;
  std::uint64_t jobs_ GUARDED_BY(mu_) = 0;
};

/// A transmission link of fixed capacity: messages serialize through it in
/// FIFO order (bytes / capacity each), then propagate for `latency`.
class BitPipe {
 public:
  BitPipe(double bits_per_second, util::SimTime propagation)
      : bps_(bits_per_second), propagation_(propagation) {
    CBDE_EXPECT(bits_per_second > 0);
    CBDE_EXPECT(propagation >= 0);
  }

  /// A message of `bytes` entering at `now`: returns its arrival time at
  /// the far end.
  util::SimTime transmit(util::SimTime now, std::size_t bytes) {
    const auto tx =
        static_cast<util::SimTime>(static_cast<double>(bytes) * 8.0 / bps_ * 1e6);
    const util::SimTime done = pipe_.submit(now, tx) ;
    bytes_carried_ += bytes;
    return done + propagation_;
  }

  /// Fraction of `horizon` the link spent transmitting.
  double utilization(util::SimTime horizon) const {
    return horizon <= 0 ? 0.0
                        : static_cast<double>(pipe_.busy_time()) /
                              static_cast<double>(horizon);
  }

  std::uint64_t bytes_carried() const { return bytes_carried_; }

 private:
  double bps_;
  util::SimTime propagation_;
  FifoResource pipe_;
  std::uint64_t bytes_carried_ = 0;
};

}  // namespace cbde::netsim
