#include "netsim/tcp_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace cbde::netsim {

LinkProfile LinkProfile::modem() {
  LinkProfile link;
  link.bandwidth_bps = 56e3;
  link.rtt = 100 * util::kMillisecond;
  link.mss = 1460;
  link.init_cwnd = 1;
  link.loss_rate = 0.01;
  link.queueing_delay = 30 * util::kMillisecond;
  return link;
}

LinkProfile LinkProfile::broadband() {
  LinkProfile link;
  link.bandwidth_bps = 10e6;
  link.rtt = 50 * util::kMillisecond;
  link.mss = 1460;
  link.init_cwnd = 1;
  link.loss_rate = 0.0;
  link.queueing_delay = 0;
  return link;
}

LatencyBreakdown transfer_latency(std::size_t bytes, const LinkProfile& link) {
  CBDE_EXPECT(link.bandwidth_bps > 0);
  CBDE_EXPECT(link.mss > 0);
  CBDE_EXPECT(link.init_cwnd >= 1);

  LatencyBreakdown out;
  // SYN + SYN-ACK (1 RTT), then the request and the first response byte
  // (second RTT begins) — model setup as 2 RTTs to first payload decision.
  out.setup = 2 * link.rtt;
  out.queueing = link.queueing_delay;
  if (bytes == 0) return out;

  const std::size_t segments = (bytes + link.mss - 1) / link.mss;
  const double seg_time_us =
      static_cast<double>(link.mss) * 8.0 / link.bandwidth_bps * 1e6;

  // Slow start: window doubles each round. A round costs one RTT if the
  // window's worth of segments serializes faster than the RTT (RTT-bound,
  // the high-bandwidth regime); once the serialization time of a window
  // exceeds the RTT the pipe is full and the remainder is purely
  // bandwidth-limited (the modem regime).
  std::size_t sent = 0;
  double cwnd = static_cast<double>(link.init_cwnd);
  double slow_start_us = 0.0;
  double transmission_us = 0.0;
  while (sent < segments) {
    const auto window = static_cast<std::size_t>(cwnd);
    const std::size_t batch = std::min(window, segments - sent);
    const double batch_tx_us = static_cast<double>(batch) * seg_time_us;
    if (batch_tx_us >= static_cast<double>(link.rtt)) {
      // Pipe is full: everything left goes out back-to-back.
      transmission_us += static_cast<double>(segments - sent) * seg_time_us;
      sent = segments;
      break;
    }
    ++out.rounds;
    sent += batch;
    // Each RTT-bound round costs one RTT (the paper's "counting RTTs"
    // framework in §VI-A); the final round additionally pays the window's
    // serialization time.
    slow_start_us += static_cast<double>(link.rtt);
    if (sent >= segments) slow_start_us += batch_tx_us;
    cwnd *= 2.0;
  }
  out.slow_start = static_cast<util::SimTime>(slow_start_us);
  out.transmission = static_cast<util::SimTime>(transmission_us);

  // Expected retransmission penalty: each lost segment costs roughly one
  // retransmission timeout; RTO is conventionally max(3 * RTT, 200 ms).
  const auto rto = std::max<util::SimTime>(3 * link.rtt, 200 * util::kMillisecond);
  out.loss_penalty = static_cast<util::SimTime>(
      static_cast<double>(segments) * link.loss_rate * static_cast<double>(rto));
  return out;
}

}  // namespace cbde::netsim
