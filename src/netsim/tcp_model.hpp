// Analytic TCP transfer-latency model (paper §VI-A).
//
// The paper converts bandwidth savings into latency savings by reasoning
// about TCP behaviour: on a high-bandwidth path the download time of a
// document is dominated by slow-start rounds (so L1/L2 ~ log2(S1/S2)); on a
// 56 kb/s modem the transmission time dominates (L1/L2 linear in S1/S2),
// moderated by connection setup, queueing and retransmission costs that push
// the observed ratio to "around 10". This module implements that model so
// the benches can *measure* those ratios instead of asserting them.
#pragma once

#include <cstdint>

#include "util/clock.hpp"

namespace cbde::netsim {

struct LinkProfile {
  double bandwidth_bps = 10e6;          ///< bottleneck link rate
  util::SimTime rtt = 50 * util::kMillisecond;
  std::size_t mss = 1460;               ///< TCP segment payload bytes
  std::size_t init_cwnd = 1;            ///< initial congestion window (segments)
  double loss_rate = 0.0;               ///< per-segment loss probability
  util::SimTime queueing_delay = 0;     ///< fixed one-way queueing term

  /// 56 kb/s modem with 100 ms RTT (the paper's low-bandwidth case),
  /// including a typical dial-up loss rate and queueing delay.
  static LinkProfile modem();

  /// High-bandwidth access path (the paper's "high-bandwidth connection"):
  /// fast enough that slow-start rounds dominate transfer time.
  static LinkProfile broadband();
};

struct LatencyBreakdown {
  util::SimTime setup = 0;         ///< TCP handshake + request round-trip
  util::SimTime slow_start = 0;    ///< RTT-bound rounds before the pipe fills
  util::SimTime transmission = 0;  ///< serialization time at the bottleneck
  util::SimTime loss_penalty = 0;  ///< expected retransmission cost
  util::SimTime queueing = 0;
  int rounds = 0;                  ///< RTT rounds spent growing the window

  util::SimTime total() const {
    return setup + slow_start + transmission + loss_penalty + queueing;
  }
  /// Response latency excluding connection setup (persistent connections).
  util::SimTime total_no_setup() const {
    return slow_start + transmission + loss_penalty + queueing;
  }
};

/// Expected latency to deliver `bytes` of response over a fresh connection.
LatencyBreakdown transfer_latency(std::size_t bytes, const LinkProfile& link);

}  // namespace cbde::netsim
