// Folding sampled span trees into flame profiles (docs/OBSERVABILITY.md,
// "Span flame profiles").
//
// A TraceContext records one request's span tree (serve -> group/encode/
// compress/commit, plus the pool's queue span). One tree answers "where did
// THIS request go"; a capacity question needs the aggregate: where does
// serve time go across a whole replay, per shard count. SpanProfile folds
// many trees into stack -> self-microseconds totals and exports them two
// ways:
//   * collapsed() — Brendan Gregg collapsed-stack lines
//     ("serve;encode 1234"), the lingua franca of flamegraph.pl and most
//     profile tooling;
//   * speedscope_json()/speedscope_document() — a speedscope "sampled"
//     profile (https://www.speedscope.app/file-format-schema.json), one
//     profile per run so shard counts sit side by side in one document.
//
// Self time is a span's duration minus its closed children's durations,
// clamped at zero (clock jitter can make children sum past the parent).
// Open spans (end_us == 0) contribute no self time but still anchor their
// children's paths. Under CBDE_OBS_OFF every span is zero-width and the
// profile stays empty.
//
// Not thread-safe: fold on one thread (benches fold after the replay ends).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace_span.hpp"

namespace cbde::obs {

class SpanProfile {
 public:
  /// Fold one trace's span tree into the profile.
  void add(const TraceContext& trace) { add(trace.spans()); }
  /// Same, from raw records (tests build fixed-time trees this way).
  void add(const std::vector<SpanRecord>& spans);

  /// Collapsed-stack lines, one per distinct stack, sorted by stack;
  /// "name;name;... <self_us>\n". Zero-weight stacks are kept — they mark
  /// code paths that executed even when the clock read 0.
  std::string collapsed() const;

  /// A complete single-profile speedscope document.
  std::string speedscope_json(std::string_view profile_name) const;

  /// One speedscope document holding several named profiles (frame table
  /// shared and deduplicated); `profiles` order is preserved.
  static std::string speedscope_document(
      const std::vector<std::pair<std::string, const SpanProfile*>>& profiles);

  /// Distinct stacks folded so far.
  std::size_t stack_count() const { return stacks_.size(); }
  /// Traces folded so far.
  std::uint64_t traces() const { return traces_; }
  /// Total self microseconds across all stacks.
  std::uint64_t total_us() const { return total_us_; }
  bool empty() const { return stacks_.empty(); }

 private:
  /// stack path ("a;b;c") -> accumulated self microseconds. Sorted map keeps
  /// every export deterministic.
  std::map<std::string, std::uint64_t> stacks_;
  std::uint64_t traces_ = 0;
  std::uint64_t total_us_ = 0;
};

}  // namespace cbde::obs
