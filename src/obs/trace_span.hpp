// Per-request trace spans: stage wall-times, queue wait, bytes in/out and
// the decision taken, carried through the serve path
// (DeltaWorkerPool::submit -> DeltaServer::serve -> encode -> compress ->
// commit). A TraceContext is created per *sampled* request (Obs::maybe_trace
// decides at the configured rate); unsampled requests carry a null pointer
// and every recording call below is a no-op on null.
//
// Concurrency: a TraceContext belongs to one request and is touched by one
// thread at a time. A handoff between threads (submitter -> pool worker)
// must establish happens-before; the worker pool's queue mutex does. It is
// NOT safe to record into one context from two threads concurrently.
//
// Compile-out (CBDE_OBS_OFF): recording compiles to nothing; spans() stays
// empty. now_us() returns 0 so no clock syscalls remain on the hot path.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cbde::obs {

/// Wall-clock microseconds on the monotonic clock (0 when compiled out).
inline std::uint64_t now_us() noexcept {
#if defined(CBDE_OBS_OFF)
  return 0;
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// 1-based index into TraceContext::spans(); 0 = invalid/none.
using SpanId = std::uint32_t;

struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;  ///< enclosing span; 0 for the root
  std::string name;
  std::uint64_t start_us = 0;  ///< relative to the trace epoch
  std::uint64_t end_us = 0;    ///< 0 while the span is still open
  std::vector<std::pair<std::string, std::string>> tags;
};

class TraceContext {
 public:
  explicit TraceContext(std::uint64_t trace_id = 0);

  std::uint64_t trace_id() const { return trace_id_; }

  /// Open a span as a child of the innermost open span.
  SpanId begin(std::string_view name);
  /// Close `id` (and, defensively, anything opened after it that was left
  /// open — spans strictly nest).
  void end(SpanId id);
  void tag(SpanId id, std::string_view key, std::string value);

  /// Completed + open spans in creation order. Read only after the request
  /// finished (the pool's future handoff orders this).
  const std::vector<SpanRecord>& spans() const { return spans_; }

  std::string to_json() const;

 private:
  std::uint64_t trace_id_;
  std::uint64_t epoch_us_;
  std::vector<SpanRecord> spans_;
  std::vector<SpanId> open_;  ///< stack of open spans, innermost last
};

/// RAII span; null-safe so instrumentation sites need no sampling branches.
class Span {
 public:
  Span() = default;
  Span(TraceContext* ctx, std::string_view name) : ctx_(ctx) {
    if (ctx_ != nullptr) id_ = ctx_->begin(name);
  }
  ~Span() { end(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void end() {
    if (ctx_ != nullptr && !ended_) {
      ctx_->end(id_);
      ended_ = true;
    }
  }
  void tag(std::string_view key, std::string value) {
    if (ctx_ != nullptr) ctx_->tag(id_, key, std::move(value));
  }

 private:
  TraceContext* ctx_ = nullptr;
  SpanId id_ = 0;
  bool ended_ = false;
};

}  // namespace cbde::obs
