#include "obs/span_profile.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace cbde::obs {

void SpanProfile::add(const std::vector<SpanRecord>& spans) {
  ++traces_;
  if (spans.empty()) return;

  // Closed duration per span (0 for open spans), and how much of it the
  // closed children claim. Span ids are 1-based indices into `spans`.
  std::vector<std::uint64_t> duration(spans.size(), 0);
  std::vector<std::uint64_t> child_us(spans.size(), 0);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    if (s.end_us > 0 && s.end_us >= s.start_us) duration[i] = s.end_us - s.start_us;
  }
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    if (s.parent != 0 && s.parent <= spans.size()) {
      child_us[s.parent - 1] += duration[i];
    }
  }

  // Root-to-span paths, memoized along the parent chain (spans are recorded
  // in creation order, so a parent always precedes its children).
  std::vector<std::string> path(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    if (s.parent != 0 && s.parent <= i) {
      path[i] = path[s.parent - 1];
      path[i] += ';';
      path[i] += s.name;
    } else {
      path[i] = s.name;
    }
  }

  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].end_us == 0) continue;  // still open: no self time yet
    const std::uint64_t self_us =
        duration[i] > child_us[i] ? duration[i] - child_us[i] : 0;
    stacks_[path[i]] += self_us;
    total_us_ += self_us;
  }
}

std::string SpanProfile::collapsed() const {
  std::string out;
  for (const auto& [stack, self_us] : stacks_) {
    out += stack;
    out += ' ';
    out += std::to_string(self_us);
    out += '\n';
  }
  return out;
}

std::string SpanProfile::speedscope_json(std::string_view profile_name) const {
  return speedscope_document({{std::string(profile_name), this}});
}

std::string SpanProfile::speedscope_document(
    const std::vector<std::pair<std::string, const SpanProfile*>>& profiles) {
  // Shared frame table: every distinct path component across every profile,
  // first-seen order (deterministic: profiles in caller order, stacks
  // name-sorted within each).
  std::vector<std::string> frames;
  std::map<std::string, std::size_t> frame_index;
  const auto intern = [&](std::string_view name) {
    auto it = frame_index.find(std::string(name));
    if (it != frame_index.end()) return it->second;
    const std::size_t idx = frames.size();
    frames.emplace_back(name);
    frame_index.emplace(std::string(name), idx);
    return idx;
  };
  const auto split_stack = [&](const std::string& stack) {
    std::vector<std::size_t> indices;
    std::size_t begin = 0;
    while (begin <= stack.size()) {
      const std::size_t sep = stack.find(';', begin);
      const std::size_t end = sep == std::string::npos ? stack.size() : sep;
      indices.push_back(intern(std::string_view(stack).substr(begin, end - begin)));
      if (sep == std::string::npos) break;
      begin = sep + 1;
    }
    return indices;
  };

  std::string body;
  bool first_profile = true;
  for (const auto& [name, profile] : profiles) {
    if (!first_profile) body += ',';
    first_profile = false;
    body += "{\"type\":\"sampled\",\"name\":";
    append_json_string(body, name);
    body += ",\"unit\":\"microseconds\",\"startValue\":0,\"endValue\":";
    body += std::to_string(profile != nullptr ? profile->total_us() : 0);
    body += ",\"samples\":[";
    std::vector<std::uint64_t> weights;
    bool first_stack = true;
    if (profile != nullptr) {
      weights.reserve(profile->stacks_.size());
      for (const auto& [stack, self_us] : profile->stacks_) {
        if (!first_stack) body += ',';
        first_stack = false;
        body += '[';
        const std::vector<std::size_t> indices = split_stack(stack);
        for (std::size_t i = 0; i < indices.size(); ++i) {
          if (i > 0) body += ',';
          body += std::to_string(indices[i]);
        }
        body += ']';
        weights.push_back(self_us);
      }
    }
    body += "],\"weights\":[";
    for (std::size_t i = 0; i < weights.size(); ++i) {
      if (i > 0) body += ',';
      body += std::to_string(weights[i]);
    }
    body += "]}";
  }

  std::string out =
      "{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\","
      "\"shared\":{\"frames\":[";
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"name\":";
    append_json_string(out, frames[i]);
    out += '}';
  }
  out += "]},\"profiles\":[";
  // alloc: ok(final append into the assembled document; a string append copies by definition and this runs once per export, off any hot path)
  out += body;
  out += "],\"activeProfileIndex\":0,\"exporter\":\"cbde\"}";
  return out;
}

}  // namespace cbde::obs
