// cbde::obs — the observability substrate (metrics registry + per-request
// trace spans + structured event log) behind the CBDE pipeline. One Obs
// instance is one telemetry domain: a DeltaServer creates its own by
// default, and a pipeline (core::Pipeline, core::EventPipeline, benches)
// shares a single instance across the server, worker pool and proxy cache
// by setting DeltaServerConfig::obs_instance.
//
// Sharing note: two DeltaServers pointed at one Obs aggregate into the same
// counters, and each server's metrics() then reports the aggregate — share
// an instance across *one* serving stack, not across independent servers.
//
// See docs/OBSERVABILITY.md for the metric catalog, span taxonomy and
// event-log schema.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "obs/event_log.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace_span.hpp"
#include "util/lock_wait.hpp"
#include "util/thread_annotations.hpp"

namespace cbde::obs {

struct ObsConfig {
  /// Fraction of requests that get a trace (0 = tracing off, 1 = every
  /// request). Deterministic 1-in-round(1/rate) sampling, first request
  /// always sampled, so short smoke runs still produce a trace.
  double sample_rate = 0.0;
  /// Log-linear sub-buckets per power-of-two octave for every histogram
  /// this instance registers (power of two in [1, 64]; 4 => <= 25% relative
  /// error, 16 => <= 6.25%).
  std::size_t histogram_sub_buckets = 4;
  /// JSONL sink for the event log; empty = in-memory ring only.
  std::string event_log_path;
  /// Most recent events retained in memory.
  std::size_t event_ring_capacity = 1024;
  /// Opt-in lock-wait profiling: when true, components attach timed
  /// acquisition cells (Obs::lock_wait_profile) to their contended mutexes
  /// and per-site `cbde_lock_wait_seconds_*` histograms populate. Off by
  /// default — the timed path costs a try_lock (and, contended, two clock
  /// reads) per acquisition.
  bool lock_profile = false;
};

class Obs {
 public:
  explicit Obs(ObsConfig config = {});

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }
  EventLog& events() { return events_; }
  const EventLog& events() const { return events_; }
  const ObsConfig& config() const { return config_; }

  /// Sampling decision for one request: a fresh TraceContext when this
  /// request is sampled, nullptr otherwise (and always nullptr when
  /// tracing is off or compiled out).
  std::shared_ptr<TraceContext> maybe_trace();

  /// Histogram with this instance's configured sub-bucket resolution.
  Histogram& histogram(std::string_view name, std::string_view help) {
    return registry_.histogram(name, help, config_.histogram_sub_buckets);
  }

  /// Convenience event emission (counts into cbde_obs_events_emitted_total).
  void emit(EventKind kind, std::int64_t sim_time_us, std::uint64_t class_id,
            std::vector<std::pair<std::string, std::string>> fields = {});

  /// One lock-wait profiling cell per mutex *site* (all shard mutexes of a
  /// server share the "server_shard" site; the pool queue mutex is its own
  /// site). Registers `name` as a seconds-scaled histogram (observations
  /// are microseconds, exported bounds are seconds), wires the cell's
  /// observe callback at it, and returns the cell for
  /// Mutex::attach_wait_profile. Idempotent per name; the cell outlives
  /// every attached mutex because this Obs owns both. `name` must be a
  /// `cbde_lock_wait_seconds_<site>` literal at the call site — the lint
  /// one-registration-site rule tracks these like any other registration.
  util::LockWaitCell& lock_wait_profile(std::string_view name, std::string_view help)
      EXCLUDES(cells_mu_);

 private:
  ObsConfig config_;
  MetricsRegistry registry_;
  EventLog events_;
  mutable Mutex cells_mu_;
  /// Node-based map: cell addresses are stable for the Obs lifetime (the
  /// mutexes keep raw pointers into it).
  std::map<std::string, std::unique_ptr<util::LockWaitCell>, std::less<>> lock_cells_
      GUARDED_BY(cells_mu_);
  std::uint64_t sample_period_;  ///< 0 = never, N = every N-th request
  std::atomic<std::uint64_t> sample_seq_{0};     // atomic: counter
  std::atomic<std::uint64_t> next_trace_id_{1};  // atomic: counter
  Counter* traces_sampled_ = nullptr;
  Counter* events_emitted_ = nullptr;
};

}  // namespace cbde::obs
