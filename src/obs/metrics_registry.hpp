// MetricsRegistry: named counters, gauges and log-linear histograms with
// snapshot export to Prometheus text exposition format and JSON
// (docs/OBSERVABILITY.md holds the catalog and naming convention
// `cbde_<layer>_<name>[_unit]`, enforced by tools/lint/cbde_lint.py).
//
// Concurrency model — "lock-cheap":
//   * registration (rare) takes the registry Mutex;
//   * the hot path (Counter::add, Gauge::set, Histogram::observe) is a
//     relaxed atomic operation on registry-owned storage — no lock, and
//     counters are sharded across cache lines so concurrent writers from
//     different threads do not bounce one line;
//   * snapshots (value(), prometheus(), json()) sum the shards with relaxed
//     loads. A snapshot taken while writers are running is per-metric
//     atomic but not cross-metric consistent; callers that need a
//     consistent multi-metric view (DeltaServer::metrics()) serialize with
//     the writers' own lock.
//
// Handles returned by the registry are stable for the registry's lifetime
// (node-based storage); components keep the reference and never look the
// name up again. Registration is idempotent: the same (name, kind) returns
// the existing instrument; a kind or bucket mismatch throws.
//
// Compile-out (CBDE_OBS_OFF): Histogram::observe becomes a no-op. Counters
// and gauges stay live in every build — they are the source of truth behind
// core::PipelineMetrics, not optional telemetry.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace cbde::obs {

#if defined(CBDE_OBS_OFF)
inline constexpr bool kCompiledOut = true;
#else
inline constexpr bool kCompiledOut = false;
#endif

/// Shards per counter; power of two. 8 cache lines per counter buys
/// contention-free adds from up to 8 concurrent threads (worker-pool scale).
inline constexpr std::size_t kCounterShards = 8;

/// Cache-line-sized cell so shards never share a line.
struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> v{0};  // atomic: counter
};

struct alignas(64) DoubleCell {
  std::atomic<double> v{0.0};  // atomic: counter
};

/// This thread's shard. Hash of the thread id, cached per thread.
inline std::size_t shard_index() noexcept {
  static thread_local const std::size_t cached =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) &
      (kCounterShards - 1);
  return cached;
}

/// Relaxed add for atomic<double> via CAS (fetch_add on floating atomics is
/// C++20 but not reliably lock-free everywhere; the CAS loop is).
inline void relaxed_add(std::atomic<double>& a, double d) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

/// Monotonic counter (uint64). add() is a relaxed atomic add on the calling
/// thread's shard; value() sums the shards.
class Counter {
 public:
  void add(std::uint64_t d) noexcept {
    shards_[shard_index()].v.fetch_add(d, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& cell : shards_) total += cell.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::array<CounterCell, kCounterShards> shards_;
};

/// Monotonic counter accumulating doubles (modeled CPU microseconds).
class DoubleCounter {
 public:
  void add(double d) noexcept { relaxed_add(shards_[shard_index()].v, d); }
  double value() const noexcept {
    double total = 0;
    for (const auto& cell : shards_) total += cell.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  friend class MetricsRegistry;
  DoubleCounter() = default;
  std::array<DoubleCell, kCounterShards> shards_;
};

/// Point-in-time value. set() is last-writer-wins; prefer add() deltas when
/// several components share one gauge (the proxy caches' size gauge).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<std::int64_t> v_{0};  // atomic: stat
};

/// Log-linear-bucket histogram for non-negative integer observations
/// (latencies in µs, sizes in bytes).
///
/// Layout, with s = sub_buckets (power of two, k = log2 s):
///   * buckets 0..s-1 hold the exact values 0..s-1;
///   * each power-of-two octave [2^e, 2^(e+1)) for e in [k, kMaxExponent)
///     is split into s linear sub-buckets of width 2^(e-k);
///   * values >= 2^kMaxExponent land in the overflow (+Inf) bucket.
/// Relative error is bounded by 1/s per octave; s=4 gives <= 25%, s=16
/// <= 6.25%. Bucket boundaries depend only on s, so histograms with equal s
/// merge bucket-by-bucket.
class Histogram {
 public:
  /// Values at or above 2^kMaxExponent (~1.1e12: ~12.7 days in µs, ~1 TiB
  /// in bytes) are overflow.
  static constexpr unsigned kMaxExponent = 40;

  void observe(std::uint64_t value) noexcept {
#if !defined(CBDE_OBS_OFF)
    counts_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  std::size_t bucket_index(std::uint64_t value) const noexcept {
    if (value < sub_buckets_) return static_cast<std::size_t>(value);
    const unsigned e = static_cast<unsigned>(std::bit_width(value)) - 1;
    if (e >= kMaxExponent) return value_buckets_;  // overflow bucket
    const unsigned shift = e - log2_sub_;
    const std::size_t sub =
        static_cast<std::size_t>((value - (std::uint64_t{1} << e)) >> shift);
    return sub_buckets_ + (e - log2_sub_) * sub_buckets_ + sub;
  }

  /// Largest value belonging to bucket `i` (the Prometheus `le` bound,
  /// inclusive); +infinity for the overflow bucket.
  double upper_bound(std::size_t i) const noexcept {
    return upper_bound_for(sub_buckets_, i);
  }
  /// Same, from the resolution alone — bucket boundaries depend only on
  /// sub_buckets, so snapshots (HistogramSnapshot) can resolve bounds
  /// without the live instrument.
  static double upper_bound_for(std::size_t sub_buckets, std::size_t i) noexcept;

  /// Total buckets including the overflow bucket.
  std::size_t num_buckets() const noexcept { return value_buckets_ + 1; }
  std::size_t sub_buckets() const noexcept { return sub_buckets_; }

  /// Multiplier applied to bucket bounds and the sum at export time (and
  /// nowhere else: observe() stays integer microseconds/bytes on the hot
  /// path). 1.0 for every histogram except the `cbde_lock_wait_seconds_*`
  /// family, which observes microseconds and exports seconds (1e-6) per the
  /// Prometheus base-unit convention.
  double unit_scale() const noexcept { return unit_scale_; }

  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return counts_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept;
  std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Histogram(std::size_t sub_buckets, double unit_scale);

  std::size_t sub_buckets_;
  unsigned log2_sub_;
  std::size_t value_buckets_;  ///< buckets before the overflow bucket
  double unit_scale_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // atomic: counter
  std::atomic<std::uint64_t> sum_{0};                     // atomic: counter
};

enum class MetricKind { kCounter, kDoubleCounter, kGauge, kHistogram };
std::string_view metric_kind_name(MetricKind kind);

/// Point-in-time copy of one histogram, decoupled from the live instrument
/// so windowed consumers (TimeSeriesRecorder) can diff and quantile it
/// offline. `counts` holds the finite buckets trimmed to the highest
/// non-empty index (a missing tail is zero); the overflow (+Inf) bucket is
/// carried separately. Bucket index i bounds via
/// Histogram::upper_bound_for(sub_buckets, i), times unit_scale.
struct HistogramSnapshot {
  std::size_t sub_buckets = 0;
  double unit_scale = 1.0;
  std::uint64_t sum = 0;    ///< raw (unscaled) sum of observations
  std::uint64_t count = 0;  ///< total observations incl. overflow
  std::uint64_t overflow = 0;
  std::vector<std::uint64_t> counts;
};

/// One registry entry at snapshot time. Only the member matching `kind` is
/// meaningful; the rest keep their zero defaults.
struct MetricSample {
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counter = 0;
  double double_counter = 0.0;
  std::int64_t gauge = 0;
  HistogramSnapshot histogram;
};

/// "cbde_shard_requests_total", 3 -> "cbde_shard_3_requests_total": the
/// per-shard metric family convention (the registry is label-free, so the
/// shard index becomes a name segment right after the cbde_shard prefix).
/// `base` must start with "cbde_shard_"; throws std::invalid_argument
/// otherwise. tools/lint/cbde_lint.py resolves registrations routed through
/// this helper against the catalog as `cbde_shard_<k>_...`.
std::string shard_metric_name(std::string_view base, std::size_t shard);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register (or fetch) an instrument. Throws std::invalid_argument on an
  /// invalid name, a kind mismatch with an existing registration, or (for
  /// histograms) a sub_buckets mismatch. sub_buckets must be a power of two
  /// in [1, 64].
  Counter& counter(std::string_view name, std::string_view help) EXCLUDES(mu_);
  DoubleCounter& double_counter(std::string_view name, std::string_view help)
      EXCLUDES(mu_);
  Gauge& gauge(std::string_view name, std::string_view help) EXCLUDES(mu_);
  /// `unit_scale` multiplies bucket bounds and the sum at export time (see
  /// Histogram::unit_scale); a mismatch with an existing registration
  /// throws, same as a sub_buckets mismatch.
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::size_t sub_buckets = 4, double unit_scale = 1.0)
      EXCLUDES(mu_);

  /// Prometheus text exposition format (v0.0.4). Families sorted by name;
  /// histogram buckets are emitted cumulatively up to the highest non-empty
  /// bound plus the mandatory +Inf bucket.
  std::string prometheus() const EXCLUDES(mu_);

  /// JSON object keyed by metric name (docs/OBSERVABILITY.md gives the
  /// schema). Same trimming as the Prometheus export.
  std::string json() const EXCLUDES(mu_);

  /// Registered names, sorted (test/CI introspection).
  std::vector<std::string> names() const EXCLUDES(mu_);

  /// Structured point-in-time copy of every instrument, name-keyed and
  /// sorted. Per-metric atomic, not cross-metric consistent (same caveat as
  /// prometheus()); the TimeSeriesRecorder diffs consecutive snapshots into
  /// windows, so any skew is bounded by one window.
  std::map<std::string, MetricSample> snapshot() const EXCLUDES(mu_);

  /// Look up an existing instrument; nullptr when `name` is unregistered or
  /// of a different kind (test/CI introspection — hot paths keep handles).
  const Counter* find_counter(std::string_view name) const EXCLUDES(mu_);
  const DoubleCounter* find_double_counter(std::string_view name) const EXCLUDES(mu_);
  const Gauge* find_gauge(std::string_view name) const EXCLUDES(mu_);
  const Histogram* find_histogram(std::string_view name) const EXCLUDES(mu_);

 private:
  struct Entry {
    MetricKind kind = MetricKind::kCounter;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<DoubleCounter> double_counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry_for(std::string_view name, std::string_view help, MetricKind kind)
      REQUIRES(mu_);
  const Entry* find(std::string_view name, MetricKind kind) const EXCLUDES(mu_);

  mutable Mutex mu_;
  /// Node-based map: handles stay valid as the registry grows; iteration is
  /// name-sorted, which makes every export deterministic.
  std::map<std::string, Entry, std::less<>> entries_ GUARDED_BY(mu_);
};

}  // namespace cbde::obs
