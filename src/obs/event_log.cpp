#include "obs/event_log.hpp"

#include "obs/json.hpp"

namespace cbde::obs {

std::string_view event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kClassCreated: return "class_created";
    case EventKind::kBasePublished: return "base_published";
    case EventKind::kGroupRebase: return "group_rebase";
    case EventKind::kBasicRebase: return "basic_rebase";
    case EventKind::kAnonymizationComplete: return "anonymization_complete";
    case EventKind::kPoolSaturated: return "pool_saturated";
    case EventKind::kDecodeFailure: return "decode_failure";
  }
  return "unknown";
}

EventLog::EventLog(std::size_t ring_capacity)
    : capacity_(ring_capacity == 0 ? 1 : ring_capacity) {}

bool EventLog::open(const std::filesystem::path& path) {
  const LockGuard lock(mu_);
  // sema: ok(one-time setup before the run starts, not on the serve path)
  sink_.open(path, std::ios::out | std::ios::app);
  return sink_.is_open();
}

void EventLog::emit(Event event) {
#if defined(CBDE_OBS_OFF)
  (void)event;
#else
  const LockGuard lock(mu_);
  ++emitted_;
  // sema: ok(events are rare by contract (publications/rebases, not per request) and the stream is buffered)
  if (sink_.is_open()) sink_ << to_jsonl(event) << '\n';
  ring_.push_back(std::move(event));
  while (ring_.size() > capacity_) ring_.pop_front();
#endif
}

std::vector<Event> EventLog::recent() const {
  const LockGuard lock(mu_);
  // alloc: ok(admin snapshot API: the ring must be copied while mu_ is held, bounded by capacity_)
  return std::vector<Event>(ring_.begin(), ring_.end());
}

std::uint64_t EventLog::emitted() const {
  const LockGuard lock(mu_);
  return emitted_;
}

void EventLog::flush() {
  const LockGuard lock(mu_);
  // sema: ok(explicit operator action at shutdown/checkpoints, never on the serve path)
  if (sink_.is_open()) sink_.flush();
}

std::string EventLog::to_jsonl(const Event& event) {
  std::string out = "{\"event\": ";
  append_json_string(out, event_kind_name(event.kind));
  out += ", \"sim_time_us\": " + std::to_string(event.sim_time_us);
  out += ", \"class_id\": " + std::to_string(event.class_id);
  if (!event.fields.empty()) {
    out += ", \"fields\": {";
    bool first = true;
    for (const auto& [key, value] : event.fields) {
      if (!first) out += ", ";
      first = false;
      append_json_string(out, key);
      out += ": ";
      append_json_string(out, value);
    }
    out += "}";
  }
  out += "}";
  return out;
}

}  // namespace cbde::obs
