#include "obs/obs.hpp"

#include <cmath>

namespace cbde::obs {
namespace {

std::uint64_t period_from_rate(double rate) {
  if (!(rate > 0.0)) return 0;  // also rejects NaN
  if (rate >= 1.0) return 1;
  const double period = std::llround(1.0 / rate);
  return period < 1.0 ? 1 : static_cast<std::uint64_t>(period);
}

}  // namespace

Obs::Obs(ObsConfig config)
    : config_(std::move(config)),
      events_(config_.event_ring_capacity),
      sample_period_(period_from_rate(config_.sample_rate)) {
  if (!config_.event_log_path.empty()) {
    events_.open(config_.event_log_path);
  }
  traces_sampled_ = &registry_.counter("cbde_obs_traces_sampled_total",
                                       "Requests that received a trace context.");
  events_emitted_ = &registry_.counter("cbde_obs_events_emitted_total",
                                       "Structured pipeline events emitted.");
}

std::shared_ptr<TraceContext> Obs::maybe_trace() {
  if (kCompiledOut || sample_period_ == 0) return nullptr;
  const std::uint64_t seq = sample_seq_.fetch_add(1, std::memory_order_relaxed);
  if (seq % sample_period_ != 0) return nullptr;
  traces_sampled_->inc();
  // alloc: ok(sampled: one trace context per sample_period requests, zero when tracing is off)
  return std::make_shared<TraceContext>(
      next_trace_id_.fetch_add(1, std::memory_order_relaxed));
}

util::LockWaitCell& Obs::lock_wait_profile(std::string_view name,
                                           std::string_view help) {
  // Register (idempotently) outside cells_mu_ so the registry lock and the
  // cell-map lock never nest.
  Histogram& hist = registry_.histogram(name, help, config_.histogram_sub_buckets,
                                        /*unit_scale=*/1e-6);
  const LockGuard lock(cells_mu_);
  auto it = lock_cells_.find(name);
  if (it == lock_cells_.end()) {
    auto cell = std::make_unique<util::LockWaitCell>();
    cell->target = &hist;
    cell->observe = [](void* target, std::uint64_t wait_us) {
      static_cast<Histogram*>(target)->observe(wait_us);
    };
    it = lock_cells_.emplace(std::string(name), std::move(cell)).first;
  }
  // sema: ok(node-based map: cell nodes are never erased, so the reference is stable for the Obs lifetime)
  return *it->second;
}

void Obs::emit(EventKind kind, std::int64_t sim_time_us, std::uint64_t class_id,
               std::vector<std::pair<std::string, std::string>> fields) {
  if (kCompiledOut) return;
  events_emitted_->inc();
  Event event;
  event.kind = kind;
  event.sim_time_us = sim_time_us;
  event.class_id = class_id;
  event.fields = std::move(fields);
  events_.emit(std::move(event));
}

}  // namespace cbde::obs
