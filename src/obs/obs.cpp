#include "obs/obs.hpp"

#include <cmath>

namespace cbde::obs {
namespace {

std::uint64_t period_from_rate(double rate) {
  if (!(rate > 0.0)) return 0;  // also rejects NaN
  if (rate >= 1.0) return 1;
  const double period = std::llround(1.0 / rate);
  return period < 1.0 ? 1 : static_cast<std::uint64_t>(period);
}

}  // namespace

Obs::Obs(ObsConfig config)
    : config_(std::move(config)),
      events_(config_.event_ring_capacity),
      sample_period_(period_from_rate(config_.sample_rate)) {
  if (!config_.event_log_path.empty()) {
    events_.open(config_.event_log_path);
  }
  traces_sampled_ = &registry_.counter("cbde_obs_traces_sampled_total",
                                       "Requests that received a trace context.");
  events_emitted_ = &registry_.counter("cbde_obs_events_emitted_total",
                                       "Structured pipeline events emitted.");
}

std::shared_ptr<TraceContext> Obs::maybe_trace() {
  if (kCompiledOut || sample_period_ == 0) return nullptr;
  const std::uint64_t seq = sample_seq_.fetch_add(1, std::memory_order_relaxed);
  if (seq % sample_period_ != 0) return nullptr;
  traces_sampled_->inc();
  // alloc: ok(sampled: one trace context per sample_period requests, zero when tracing is off)
  return std::make_shared<TraceContext>(
      next_trace_id_.fetch_add(1, std::memory_order_relaxed));
}

void Obs::emit(EventKind kind, std::int64_t sim_time_us, std::uint64_t class_id,
               std::vector<std::pair<std::string, std::string>> fields) {
  if (kCompiledOut) return;
  events_emitted_->inc();
  Event event;
  event.kind = kind;
  event.sim_time_us = sim_time_us;
  event.class_id = class_id;
  event.fields = std::move(fields);
  events_.emit(std::move(event));
}

}  // namespace cbde::obs
