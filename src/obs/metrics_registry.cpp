#include "obs/metrics_registry.hpp"

#include <limits>
#include <stdexcept>

#include "obs/json.hpp"

namespace cbde::obs {
namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  };
  if (!head(name.front())) return false;
  for (const char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

[[noreturn]] void bad_registration(std::string_view name, const std::string& why) {
  throw std::invalid_argument("obs: metric '" + std::string(name) + "': " + why);
}

}  // namespace

std::string_view metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kDoubleCounter: return "counter";  // Prometheus type
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

Histogram::Histogram(std::size_t sub_buckets, double unit_scale)
    : sub_buckets_(sub_buckets),
      log2_sub_(static_cast<unsigned>(std::countr_zero(sub_buckets))),
      value_buckets_(sub_buckets + (kMaxExponent - log2_sub_) * sub_buckets),
      unit_scale_(unit_scale),
      counts_(new std::atomic<std::uint64_t>[value_buckets_ + 1]) {
  for (std::size_t i = 0; i <= value_buckets_; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

double Histogram::upper_bound_for(std::size_t sub_buckets, std::size_t i) noexcept {
  const unsigned log2_sub = static_cast<unsigned>(std::countr_zero(sub_buckets));
  const std::size_t value_buckets =
      sub_buckets + (kMaxExponent - log2_sub) * sub_buckets;
  if (i >= value_buckets) return std::numeric_limits<double>::infinity();
  if (i < sub_buckets) return static_cast<double>(i);
  const std::size_t m = i - sub_buckets;
  const unsigned e = log2_sub + static_cast<unsigned>(m / sub_buckets);
  const std::uint64_t sub = m % sub_buckets;
  const std::uint64_t width = std::uint64_t{1} << (e - log2_sub);
  return static_cast<double>((std::uint64_t{1} << e) + (sub + 1) * width - 1);
}

std::string shard_metric_name(std::string_view base, std::size_t shard) {
  constexpr std::string_view kPrefix = "cbde_shard_";
  if (base.substr(0, kPrefix.size()) != kPrefix) {
    throw std::invalid_argument("obs: shard_metric_name base '" + std::string(base) +
                                "' must start with cbde_shard_");
  }
  std::string out(kPrefix);
  out += std::to_string(shard);
  out += '_';
  out += base.substr(kPrefix.size());
  return out;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= value_buckets_; ++i) {
    total += counts_[i].load(std::memory_order_relaxed);
  }
  return total;
}

MetricsRegistry::Entry& MetricsRegistry::entry_for(std::string_view name,
                                                   std::string_view help,
                                                   MetricKind kind) {
  if (!valid_metric_name(name)) bad_registration(name, "invalid metric name");
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != kind) {
      bad_registration(name, "already registered as a different kind");
    }
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.help = std::string(help);
  return entries_.emplace(std::string(name), std::move(entry)).first->second;
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help) {
  const LockGuard lock(mu_);
  Entry& e = entry_for(name, help, MetricKind::kCounter);
  if (!e.counter) e.counter.reset(new Counter());
  // sema: ok(node-based map: instrument handles are stable for the registry's lifetime by contract)
  return *e.counter;
}

DoubleCounter& MetricsRegistry::double_counter(std::string_view name,
                                               std::string_view help) {
  const LockGuard lock(mu_);
  Entry& e = entry_for(name, help, MetricKind::kDoubleCounter);
  if (!e.double_counter) e.double_counter.reset(new DoubleCounter());
  // sema: ok(node-based map: instrument handles are stable for the registry's lifetime by contract)
  return *e.double_counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  const LockGuard lock(mu_);
  Entry& e = entry_for(name, help, MetricKind::kGauge);
  if (!e.gauge) e.gauge.reset(new Gauge());
  // sema: ok(node-based map: instrument handles are stable for the registry's lifetime by contract)
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::string_view help,
                                      std::size_t sub_buckets, double unit_scale) {
  if (sub_buckets == 0 || sub_buckets > 64 || !std::has_single_bit(sub_buckets)) {
    bad_registration(name, "sub_buckets must be a power of two in [1, 64]");
  }
  if (!(unit_scale > 0.0)) {
    bad_registration(name, "unit_scale must be positive");
  }
  const LockGuard lock(mu_);
  Entry& e = entry_for(name, help, MetricKind::kHistogram);
  if (!e.histogram) {
    e.histogram.reset(new Histogram(sub_buckets, unit_scale));
  } else if (e.histogram->sub_buckets() != sub_buckets) {
    bad_registration(name, "already registered with different sub_buckets");
  } else if (e.histogram->unit_scale() != unit_scale) {
    bad_registration(name, "already registered with a different unit_scale");
  }
  // sema: ok(node-based map: instrument handles are stable for the registry's lifetime by contract)
  return *e.histogram;
}

const MetricsRegistry::Entry* MetricsRegistry::find(std::string_view name,
                                                    MetricKind kind) const {
  const LockGuard lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != kind) return nullptr;
  // sema: ok(node-based map: Entry nodes are never erased, so the pointer is stable for the registry's lifetime)
  return &it->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const Entry* e = find(name, MetricKind::kCounter);
  return e ? e->counter.get() : nullptr;
}

const DoubleCounter* MetricsRegistry::find_double_counter(std::string_view name) const {
  const Entry* e = find(name, MetricKind::kDoubleCounter);
  return e ? e->double_counter.get() : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  const Entry* e = find(name, MetricKind::kGauge);
  return e ? e->gauge.get() : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const Entry* e = find(name, MetricKind::kHistogram);
  return e ? e->histogram.get() : nullptr;
}

std::string MetricsRegistry::prometheus() const {
  const LockGuard lock(mu_);
  std::string out;
  for (const auto& [name, entry] : entries_) {
    out += "# HELP " + name + " " + entry.help + "\n";
    out += "# TYPE " + name + " ";
    out += metric_kind_name(entry.kind);
    out += "\n";
    switch (entry.kind) {
      case MetricKind::kCounter:
        out += name + " " + std::to_string(entry.counter->value()) + "\n";
        break;
      case MetricKind::kDoubleCounter:
        out += name + " " + format_double(entry.double_counter->value()) + "\n";
        break;
      case MetricKind::kGauge:
        out += name + " " + std::to_string(entry.gauge->value()) + "\n";
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *entry.histogram;
        // Trim: emit up to the highest non-empty finite bucket (cumulative
        // counts stay valid under any le subset), then the mandatory +Inf.
        std::size_t last = 0;
        bool any = false;
        for (std::size_t i = 0; i + 1 < h.num_buckets(); ++i) {
          if (h.bucket_count(i) > 0) {
            last = i;
            any = true;
          }
        }
        std::uint64_t cumulative = 0;
        if (any) {
          for (std::size_t i = 0; i <= last; ++i) {
            cumulative += h.bucket_count(i);
            out += name + "_bucket{le=\"" +
                   format_double(h.upper_bound(i) * h.unit_scale()) + "\"} " +
                   std::to_string(cumulative) + "\n";
          }
        }
        const std::uint64_t total = h.count();
        out += name + "_bucket{le=\"+Inf\"} " + std::to_string(total) + "\n";
        // Scaled histograms (seconds families) export a scaled sum; the
        // unscaled ones keep the exact integer form.
        out += name + "_sum " +
               (h.unit_scale() == 1.0
                    ? std::to_string(h.sum())
                    : format_double(static_cast<double>(h.sum()) * h.unit_scale())) +
               "\n";
        out += name + "_count " + std::to_string(total) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::json() const {
  const LockGuard lock(mu_);
  std::string out = "{";
  bool first = true;
  for (const auto& [name, entry] : entries_) {
    if (!first) out += ",";
    first = false;
    out += "\n  ";
    append_json_string(out, name);
    out += ": {\"kind\": \"";
    switch (entry.kind) {
      case MetricKind::kCounter:
        out += "counter\", \"value\": " + std::to_string(entry.counter->value());
        break;
      case MetricKind::kDoubleCounter:
        out += "counter\", \"value\": " + format_double(entry.double_counter->value());
        break;
      case MetricKind::kGauge:
        out += "gauge\", \"value\": " + std::to_string(entry.gauge->value());
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out += "histogram\", \"count\": " + std::to_string(h.count()) + ", \"sum\": " +
               (h.unit_scale() == 1.0
                    ? std::to_string(h.sum())
                    : format_double(static_cast<double>(h.sum()) * h.unit_scale())) +
               ", \"buckets\": [";
        std::size_t last = 0;
        bool any = false;
        for (std::size_t i = 0; i + 1 < h.num_buckets(); ++i) {
          if (h.bucket_count(i) > 0) {
            last = i;
            any = true;
          }
        }
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; any && i <= last; ++i) {
          cumulative += h.bucket_count(i);
          if (i > 0) out += ", ";
          out += "{\"le\": " + format_double(h.upper_bound(i) * h.unit_scale()) +
                 ", \"count\": " + std::to_string(cumulative) + "}";
        }
        out += "]";
        break;
      }
    }
    out += "}";
  }
  out += "\n}\n";
  return out;
}

std::map<std::string, MetricSample> MetricsRegistry::snapshot() const {
  const LockGuard lock(mu_);
  std::map<std::string, MetricSample> out;
  for (const auto& [name, entry] : entries_) {
    MetricSample sample;
    sample.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        sample.counter = entry.counter->value();
        break;
      case MetricKind::kDoubleCounter:
        sample.double_counter = entry.double_counter->value();
        break;
      case MetricKind::kGauge:
        sample.gauge = entry.gauge->value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *entry.histogram;
        HistogramSnapshot& snap = sample.histogram;
        snap.sub_buckets = h.sub_buckets();
        snap.unit_scale = h.unit_scale();
        snap.sum = h.sum();
        std::size_t last = 0;
        bool any = false;
        for (std::size_t i = 0; i + 1 < h.num_buckets(); ++i) {
          if (h.bucket_count(i) > 0) {
            last = i;
            any = true;
          }
        }
        if (any) {
          snap.counts.resize(last + 1);
          for (std::size_t i = 0; i <= last; ++i) {
            snap.counts[i] = h.bucket_count(i);
            snap.count += snap.counts[i];
          }
        }
        snap.overflow = h.bucket_count(h.num_buckets() - 1);
        snap.count += snap.overflow;
        break;
      }
    }
    out.emplace(name, std::move(sample));
  }
  return out;
}

std::vector<std::string> MetricsRegistry::names() const {
  const LockGuard lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

}  // namespace cbde::obs
