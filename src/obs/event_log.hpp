// Structured event log for rare-but-important pipeline events: class
// creation, base-file publication/rebase, anonymization completion,
// worker-pool saturation, decode/verify failures.
//
// Two consumers:
//   * an in-memory ring of the most recent events (tests, operational
//     snapshots — bounded, so long runs cannot grow without bound);
//   * an optional JSONL sink (one JSON object per line, append-only) opened
//     via the `obs-event-log` config key. Schema in docs/OBSERVABILITY.md.
//
// emit() is thread-safe (internally locked); events are rare by contract,
// so a plain mutex is the right cost. Compile-out (CBDE_OBS_OFF) turns
// emit() into a no-op.
#pragma once

#include <cstdint>
#include <deque>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/thread_annotations.hpp"

namespace cbde::obs {

enum class EventKind {
  kClassCreated,
  kBasePublished,
  kGroupRebase,
  kBasicRebase,
  kAnonymizationComplete,
  kPoolSaturated,
  kDecodeFailure,
};

std::string_view event_kind_name(EventKind kind);

struct Event {
  EventKind kind = EventKind::kClassCreated;
  std::int64_t sim_time_us = -1;  ///< simulated time; -1 = outside sim time
  std::uint64_t class_id = 0;     ///< 0 = not class-scoped
  std::vector<std::pair<std::string, std::string>> fields;
};

class EventLog {
 public:
  explicit EventLog(std::size_t ring_capacity = 1024);

  /// Open (append) the JSONL sink. Returns false if the file cannot be
  /// opened; the ring keeps working either way.
  bool open(const std::filesystem::path& path) EXCLUDES(mu_);

  void emit(Event event) EXCLUDES(mu_);

  /// Copy of the ring, oldest first.
  std::vector<Event> recent() const EXCLUDES(mu_);
  /// Events emitted since construction (ring evictions included).
  std::uint64_t emitted() const EXCLUDES(mu_);

  void flush() EXCLUDES(mu_);

  /// One event as a single JSONL line (no trailing newline).
  static std::string to_jsonl(const Event& event);

 private:
  const std::size_t capacity_;
  mutable Mutex mu_;
  std::deque<Event> ring_ GUARDED_BY(mu_);
  std::uint64_t emitted_ GUARDED_BY(mu_) = 0;
  std::ofstream sink_ GUARDED_BY(mu_);
};

}  // namespace cbde::obs
