#include "obs/time_series.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "obs/json.hpp"
#include "obs/trace_span.hpp"

namespace cbde::obs {
namespace {

/// Index of the largest finite bucket for a resolution (quantiles that land
/// in the overflow bucket clamp here — see histogram_window_quantile).
std::size_t last_finite_bucket(std::size_t sub_buckets) noexcept {
  const unsigned log2_sub = static_cast<unsigned>(std::countr_zero(sub_buckets));
  return sub_buckets + (Histogram::kMaxExponent - log2_sub) * sub_buckets - 1;
}

}  // namespace

HistogramSnapshot diff_histogram(const HistogramSnapshot& prev,
                                 const HistogramSnapshot& cur, bool* reset) {
  // A prev with sub_buckets 0 is "no previous sample" (the series appeared
  // mid-flight): the whole current snapshot is the window, and that is not
  // a reset.
  if (prev.sub_buckets == 0) return cur;
  const auto fall_back_to_cur = [&]() {
    if (reset != nullptr) *reset = true;
    return cur;
  };
  if (prev.sub_buckets != cur.sub_buckets || prev.unit_scale != cur.unit_scale) {
    return fall_back_to_cur();
  }
  if (cur.count < prev.count || cur.sum < prev.sum || cur.overflow < prev.overflow ||
      cur.counts.size() < prev.counts.size()) {
    return fall_back_to_cur();
  }
  HistogramSnapshot out;
  out.sub_buckets = cur.sub_buckets;
  out.unit_scale = cur.unit_scale;
  out.counts.resize(cur.counts.size());
  for (std::size_t i = 0; i < cur.counts.size(); ++i) {
    const std::uint64_t before = i < prev.counts.size() ? prev.counts[i] : 0;
    if (cur.counts[i] < before) return fall_back_to_cur();
    out.counts[i] = cur.counts[i] - before;
    out.count += out.counts[i];
  }
  out.overflow = cur.overflow - prev.overflow;
  out.count += out.overflow;
  out.sum = cur.sum - prev.sum;
  return out;
}

double histogram_window_quantile(const HistogramSnapshot& window, double q) {
  if (window.count == 0 || !(q > 0.0)) return 0.0;
  const double clamped = q > 1.0 ? 1.0 : q;
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(clamped * static_cast<double>(window.count)));
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < window.counts.size(); ++i) {
    cumulative += window.counts[i];
    if (cumulative >= rank) {
      return Histogram::upper_bound_for(window.sub_buckets, i) * window.unit_scale;
    }
  }
  // The rank lands in the overflow bucket; clamp to the largest finite bound
  // so every export stays a finite JSON number.
  return Histogram::upper_bound_for(window.sub_buckets,
                                    last_finite_bucket(window.sub_buckets)) *
         window.unit_scale;
}

HistogramWindow summarize_histogram_window(const HistogramSnapshot& window) {
  HistogramWindow out;
  out.count = window.count;
  out.sum = static_cast<double>(window.sum) * window.unit_scale;
  out.p50 = histogram_window_quantile(window, 0.50);
  out.p95 = histogram_window_quantile(window, 0.95);
  out.p99 = histogram_window_quantile(window, 0.99);
  return out;
}

bool parse_shard_series(std::string_view name, std::string_view suffix,
                        std::size_t* shard) {
  constexpr std::string_view kPrefix = "cbde_shard_";
  if (name.substr(0, kPrefix.size()) != kPrefix) return false;
  const std::string_view rest = name.substr(kPrefix.size());
  std::size_t index = 0;
  std::size_t digits = 0;
  while (digits < rest.size() && rest[digits] >= '0' && rest[digits] <= '9') {
    index = index * 10 + static_cast<std::size_t>(rest[digits] - '0');
    ++digits;
  }
  if (digits == 0 || digits >= rest.size() || rest[digits] != '_') return false;
  if (rest.substr(digits + 1) != suffix) return false;
  if (shard != nullptr) *shard = index;
  return true;
}

TimeSeriesRecorder::TimeSeriesRecorder(MetricsRegistry& registry,
                                       TimeSeriesConfig config)
    : registry_(registry), config_(std::move(config)) {
  if (!config_.jsonl_path.empty()) {
    sink_.open(config_.jsonl_path, std::ios::trunc);
    sink_open_ = sink_.is_open();
  }
  prev_ = registry_.snapshot();
  prev_wall_us_ = now_us();
}

TimeSeriesRecorder::~TimeSeriesRecorder() { stop(); }

TimeSeriesWindow TimeSeriesRecorder::tick() {
  // Snapshot before taking mu_, so the registry lock and the recorder lock
  // never nest (and a slow snapshot never blocks windows()).
  std::map<std::string, MetricSample> cur = registry_.snapshot();
  const std::uint64_t wall = now_us();
  TimeSeriesWindow window;
  {
    const LockGuard lock(mu_);
    window = build_window(prev_, cur, prev_wall_us_, wall, next_tick_++);
    prev_ = std::move(cur);
    prev_wall_us_ = wall;
    ring_.push_back(window);
    const std::size_t cap = std::max<std::size_t>(1, config_.ring_capacity);
    while (ring_.size() > cap) ring_.pop_front();
  }
  if (sink_open_) {
    const std::string line = to_jsonl(window);
    const LockGuard io(io_mu_);
    // sema: ok(recorder-private io_mu_: mu_ is released above and the registry snapshot completed earlier, so no registry/shard/pool mutex is held across this append; ticks run at window rate, not request rate)
    sink_ << line;
    sink_.flush();
  }
  return window;
}

void TimeSeriesRecorder::start() {
  if (kCompiledOut || config_.interval_us == 0) return;
  const LockGuard lock(mu_);
  if (thread_running_) return;
  stop_requested_ = false;
  thread_running_ = true;
  // sema: ok(run() executes on the spawned thread after this critical section ends, not inside it; the lambda only captures `this`)
  thread_ = std::thread([this] { run(); });
}

void TimeSeriesRecorder::stop() {
  std::thread to_join;
  {
    const LockGuard lock(mu_);
    if (!thread_running_) return;
    stop_requested_ = true;
    thread_running_ = false;
    to_join = std::move(thread_);
  }
  wake_.notify_all();
  if (to_join.joinable()) to_join.join();
}

void TimeSeriesRecorder::run() {
  for (;;) {
    {
      const LockGuard lock(mu_);
      if (stop_requested_) return;
      wake_.wait_for_us(mu_, config_.interval_us);
      if (stop_requested_) return;
    }
    tick();
  }
}

std::vector<TimeSeriesWindow> TimeSeriesRecorder::windows() const {
  const LockGuard lock(mu_);
  // alloc: ok(snapshot contract: the ring is bounded at ring_capacity windows and windows() is a read-side call, never on the serve path)
  return std::vector<TimeSeriesWindow>(ring_.begin(), ring_.end());
}

std::uint64_t TimeSeriesRecorder::ticks() const {
  const LockGuard lock(mu_);
  return next_tick_ - 1;
}

TimeSeriesWindow TimeSeriesRecorder::build_window(
    const std::map<std::string, MetricSample>& prev,
    const std::map<std::string, MetricSample>& cur, std::uint64_t prev_wall_us,
    std::uint64_t wall_us, std::uint64_t tick) const {
  TimeSeriesWindow w;
  w.tick = tick;
  w.wall_us = wall_us;
  w.span_seconds =
      wall_us > prev_wall_us ? static_cast<double>(wall_us - prev_wall_us) / 1e6 : 0.0;

  // Diffed histogram windows, kept until the derived statistics below are
  // computed (they need the buckets, not just the quantiles).
  std::map<std::string, HistogramSnapshot> diffed;
  for (const auto& [name, sample] : cur) {
    const auto pit = prev.find(name);
    const MetricSample* before =
        (pit != prev.end() && pit->second.kind == sample.kind) ? &pit->second : nullptr;
    switch (sample.kind) {
      case MetricKind::kCounter: {
        const std::uint64_t prev_value = before != nullptr ? before->counter : 0;
        double delta = 0.0;
        if (sample.counter < prev_value) {
          w.reset = true;  // wraparound / restarted series: the window is cur
          delta = static_cast<double>(sample.counter);
        } else {
          delta = static_cast<double>(sample.counter - prev_value);
        }
        w.counter_delta[name] = delta;
        w.counter_rate[name] = w.span_seconds > 0 ? delta / w.span_seconds : 0.0;
        break;
      }
      case MetricKind::kDoubleCounter: {
        const double prev_value = before != nullptr ? before->double_counter : 0.0;
        double delta = 0.0;
        if (sample.double_counter < prev_value) {
          w.reset = true;
          delta = sample.double_counter;
        } else {
          delta = sample.double_counter - prev_value;
        }
        w.counter_delta[name] = delta;
        w.counter_rate[name] = w.span_seconds > 0 ? delta / w.span_seconds : 0.0;
        break;
      }
      case MetricKind::kGauge:
        w.gauge[name] = sample.gauge;
        break;
      case MetricKind::kHistogram: {
        bool reset = false;
        HistogramSnapshot d = diff_histogram(
            before != nullptr ? before->histogram : HistogramSnapshot{},
            sample.histogram, &reset);
        if (reset) w.reset = true;
        HistogramWindow hw = summarize_histogram_window(d);
        hw.reset = reset;
        w.histogram.emplace(name, hw);
        diffed.emplace(name, std::move(d));
        break;
      }
    }
  }

  // Per-shard request rates and the imbalance coefficient.
  std::size_t max_shard = 0;
  bool any_shard = false;
  for (const auto& [name, delta] : w.counter_delta) {
    std::size_t shard = 0;
    if (parse_shard_series(name, "requests_total", &shard)) {
      any_shard = true;
      max_shard = std::max(max_shard, shard);
    }
  }
  if (any_shard) {
    w.shard_rate.assign(max_shard + 1, 0.0);
    for (const auto& [name, rate] : w.counter_rate) {
      std::size_t shard = 0;
      if (parse_shard_series(name, "requests_total", &shard)) {
        w.shard_rate[shard] = rate;
      }
    }
    double sum = 0.0;
    double peak = 0.0;
    for (const double rate : w.shard_rate) {
      sum += rate;
      peak = std::max(peak, rate);
    }
    const double mean = sum / static_cast<double>(w.shard_rate.size());
    w.imbalance = mean > 0 ? peak / mean : 0.0;
  }

  // Serve quantiles merged across shards (equal resolution by construction:
  // one Obs instance registers every shard histogram), and the lock-wait
  // share of that serve time.
  HistogramSnapshot merged;
  bool merged_any = false;
  double lock_wait_seconds = 0.0;
  for (const auto& [name, d] : diffed) {
    std::size_t shard = 0;
    if (parse_shard_series(name, "serve_microseconds", &shard)) {
      if (!merged_any) {
        merged = d;
        merged_any = true;
      } else if (merged.sub_buckets == d.sub_buckets) {
        if (d.counts.size() > merged.counts.size()) {
          merged.counts.resize(d.counts.size(), 0);
        }
        for (std::size_t i = 0; i < d.counts.size(); ++i) {
          merged.counts[i] += d.counts[i];
        }
        merged.overflow += d.overflow;
        merged.count += d.count;
        merged.sum += d.sum;
      }
    } else if (name.rfind("cbde_lock_wait_seconds", 0) == 0) {
      lock_wait_seconds += static_cast<double>(d.sum) * d.unit_scale;
    }
  }
  if (merged_any) {
    w.serve_requests = merged.count;
    w.serve_p50_us = histogram_window_quantile(merged, 0.50);
    w.serve_p95_us = histogram_window_quantile(merged, 0.95);
    w.serve_p99_us = histogram_window_quantile(merged, 0.99);
    const double serve_seconds =
        static_cast<double>(merged.sum) * merged.unit_scale / 1e6;
    w.lock_wait_share = serve_seconds > 0 ? lock_wait_seconds / serve_seconds : 0.0;
  }
  return w;
}

std::string TimeSeriesRecorder::to_jsonl(const TimeSeriesWindow& w) {
  std::string out = "{\"tick\":" + std::to_string(w.tick);
  out += ",\"wall_us\":" + std::to_string(w.wall_us);
  out += ",\"span_seconds\":" + format_double(w.span_seconds);
  out += ",\"reset\":";
  out += w.reset ? "true" : "false";
  const auto double_map = [&out](const char* key,
                                 const std::map<std::string, double>& m) {
    out += ",\"";
    out += key;
    out += "\":{";
    bool first = true;
    for (const auto& [name, value] : m) {
      if (!first) out += ",";
      first = false;
      append_json_string(out, name);
      out += ":" + format_double(value);
    }
    out += "}";
  };
  double_map("counter_delta", w.counter_delta);
  double_map("counter_rate", w.counter_rate);
  out += ",\"gauge\":{";
  bool first = true;
  for (const auto& [name, value] : w.gauge) {
    if (!first) out += ",";
    first = false;
    append_json_string(out, name);
    out += ":" + std::to_string(value);
  }
  out += "},\"histogram\":{";
  first = true;
  for (const auto& [name, hw] : w.histogram) {
    if (!first) out += ",";
    first = false;
    append_json_string(out, name);
    out += ":{\"count\":" + std::to_string(hw.count);
    out += ",\"sum\":" + format_double(hw.sum);
    out += ",\"p50\":" + format_double(hw.p50);
    out += ",\"p95\":" + format_double(hw.p95);
    out += ",\"p99\":" + format_double(hw.p99);
    out += ",\"reset\":";
    out += hw.reset ? "true" : "false";
    out += "}";
  }
  out += "},\"shard_rate\":[";
  for (std::size_t i = 0; i < w.shard_rate.size(); ++i) {
    if (i > 0) out += ",";
    out += format_double(w.shard_rate[i]);
  }
  out += "],\"imbalance\":" + format_double(w.imbalance);
  out += ",\"serve_requests\":" + std::to_string(w.serve_requests);
  out += ",\"serve_p50_us\":" + format_double(w.serve_p50_us);
  out += ",\"serve_p95_us\":" + format_double(w.serve_p95_us);
  out += ",\"serve_p99_us\":" + format_double(w.serve_p99_us);
  out += ",\"lock_wait_share\":" + format_double(w.lock_wait_share);
  out += "}\n";
  return out;
}

}  // namespace cbde::obs
