#include "obs/trace_span.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace cbde::obs {

TraceContext::TraceContext(std::uint64_t trace_id)
    : trace_id_(trace_id), epoch_us_(now_us()) {}

SpanId TraceContext::begin(std::string_view name) {
#if defined(CBDE_OBS_OFF)
  (void)name;
  return 0;
#else
  SpanRecord record;
  record.id = static_cast<SpanId>(spans_.size() + 1);
  record.parent = open_.empty() ? 0 : open_.back();
  record.name = std::string(name);
  record.start_us = now_us() - epoch_us_;
  spans_.push_back(std::move(record));
  open_.push_back(spans_.back().id);
  return spans_.back().id;
#endif
}

void TraceContext::end(SpanId id) {
#if defined(CBDE_OBS_OFF)
  (void)id;
#else
  if (id == 0 || id > spans_.size()) return;
  const std::uint64_t t = now_us() - epoch_us_;
  // Spans strictly nest: closing an outer span closes any child left open.
  while (!open_.empty()) {
    const SpanId top = open_.back();
    open_.pop_back();
    SpanRecord& record = spans_[top - 1];
    if (record.end_us == 0) record.end_us = t;
    if (top == id) return;
  }
  // `id` was not on the stack (already closed); just make sure it has an end.
  SpanRecord& record = spans_[id - 1];
  if (record.end_us == 0) record.end_us = t;
#endif
}

void TraceContext::tag(SpanId id, std::string_view key, std::string value) {
#if defined(CBDE_OBS_OFF)
  (void)id;
  (void)key;
  (void)value;
#else
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].tags.emplace_back(std::string(key), std::move(value));
#endif
}

std::string TraceContext::to_json() const {
  std::string out = "{\"trace_id\": " + std::to_string(trace_id_) + ", \"spans\": [";
  bool first = true;
  for (const SpanRecord& s : spans_) {
    if (!first) out += ", ";
    first = false;
    out += "{\"id\": " + std::to_string(s.id) +
           ", \"parent\": " + std::to_string(s.parent) + ", \"name\": ";
    append_json_string(out, s.name);
    out += ", \"start_us\": " + std::to_string(s.start_us) +
           ", \"end_us\": " + std::to_string(s.end_us);
    if (!s.tags.empty()) {
      out += ", \"tags\": {";
      bool first_tag = true;
      for (const auto& [key, value] : s.tags) {
        if (!first_tag) out += ", ";
        first_tag = false;
        append_json_string(out, key);
        out += ": ";
        append_json_string(out, value);
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace cbde::obs
