// Minimal JSON string/number formatting shared by the obs exporters (the
// registry JSON dump, trace-span JSON, and the event-log JSONL sink). Not a
// parser — emission only, so a handful of helpers is the whole surface.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace cbde::obs {

/// Append `s` as a JSON string literal (quotes included) to `out`.
inline void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Shortest round-trippable-enough decimal for metric values: integers print
/// without a fraction ("42"), everything else as %.17g ("2.5").
inline std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace cbde::obs
