// Windowed time-series over the MetricsRegistry (docs/OBSERVABILITY.md,
// "Time-series recorder").
//
// Cumulative counters and one-shot histograms answer "how much, ever"; the
// capacity questions of §VI-C need "how much, per window": per-shard request
// rates, latency quantiles that drift over a replay, lock-wait share. The
// TimeSeriesRecorder snapshots the registry at each tick(), diffs the
// snapshot against the previous one into a TimeSeriesWindow — counter
// deltas/rates, gauge values, histogram-diff quantiles (the log-linear
// buckets merge and therefore also *diff* bucket-by-bucket) — keeps a
// bounded ring of windows, and optionally appends one JSONL line per window
// keyed by a monotonic tick.
//
// Derived per-window statistics (all computed from the diffed buckets, no
// extra instrumentation):
//   * shard_rate[k]   — Δ cbde_shard_<k>_requests_total / window seconds;
//   * imbalance       — max(shard_rate) / mean(shard_rate), 1.0 = perfectly
//                       balanced, 0 when the window saw no shard traffic;
//   * serve quantiles — p50/p95/p99 of the per-shard serve histograms
//                       merged across shards (µs);
//   * lock_wait_share — Δ seconds spent waiting in cbde_lock_wait_seconds_*
//                       over Δ seconds of serve work. Can exceed 1 when many
//                       workers pile on one lock.
//
// Concurrency: tick() may be called manually (benches, tests) or by the
// background snapshot thread (start()/stop(), interval_us > 0); ticks
// serialize on the recorder's own mu_. The JSONL append happens strictly
// after mu_ is released, under the dedicated io_mu_ — the recorder never
// holds a registry, shard or pool mutex while writing (the cbde_sema
// blocking pass pins this; see PRIVATE_SINK_MUTEXES there).
//
// Compile-out (CBDE_OBS_OFF): counters and gauges stay live, so tick()
// still produces counter deltas; but now_us() is 0 (all rates and spans
// read 0), histograms never populate, and start() refuses to spawn the
// snapshot thread.
#pragma once

#include <cstdint>
#include <deque>
#include <fstream>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "util/thread_annotations.hpp"

namespace cbde::obs {

struct TimeSeriesConfig {
  /// Most recent windows retained in memory.
  std::size_t ring_capacity = 64;
  /// JSONL sink, one line per window; empty = ring only.
  std::string jsonl_path;
  /// Background snapshot cadence for start(); 0 = manual tick() only.
  std::uint64_t interval_us = 0;
};

/// One histogram's contribution to a window: observations that happened
/// inside the window, summarized. Quantities are scaled by the histogram's
/// unit_scale (so lock-wait windows read in seconds).
struct HistogramWindow {
  std::uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  bool reset = false;  ///< the cumulative series went backwards
};

struct TimeSeriesWindow {
  std::uint64_t tick = 0;     ///< monotonic, first window is 1
  std::uint64_t wall_us = 0;  ///< now_us() at the closing snapshot
  double span_seconds = 0.0;  ///< wall time since the previous snapshot
  bool reset = false;         ///< any series went backwards this window
  std::map<std::string, double> counter_delta;
  std::map<std::string, double> counter_rate;  ///< delta / span_seconds
  std::map<std::string, std::int64_t> gauge;
  std::map<std::string, HistogramWindow> histogram;
  // Derived shard statistics (empty/zero when the registry carries no
  // per-shard series).
  std::vector<double> shard_rate;
  double imbalance = 0.0;
  std::uint64_t serve_requests = 0;
  double serve_p50_us = 0.0;
  double serve_p95_us = 0.0;
  double serve_p99_us = 0.0;
  double lock_wait_share = 0.0;
};

/// Bucketwise `cur - prev`. A cumulative histogram only grows; any bucket,
/// count or sum going backwards means the underlying series was reset (new
/// process, wraparound) — then the window falls back to `cur` outright and
/// `*reset` is set. Snapshots of different resolution also count as a
/// reset.
HistogramSnapshot diff_histogram(const HistogramSnapshot& prev,
                                 const HistogramSnapshot& cur, bool* reset);

/// Quantile over one window of buckets: the scaled upper bound of the
/// bucket containing rank ceil(q * count). 0 on an empty window; +infinity
/// when the rank lands in the overflow bucket. `q` in (0, 1].
double histogram_window_quantile(const HistogramSnapshot& window, double q);

/// count/sum/p50/p95/p99 of one diffed window (scaled by unit_scale).
HistogramWindow summarize_histogram_window(const HistogramSnapshot& window);

/// Parse "cbde_shard_<k>_<suffix>" → shard index; false when `name` is not
/// that family. Exposed for the bench/tooling side.
bool parse_shard_series(std::string_view name, std::string_view suffix,
                        std::size_t* shard);

class TimeSeriesRecorder {
 public:
  /// Takes the epoch snapshot immediately, so the first tick() covers
  /// activity since construction. `registry` must outlive the recorder.
  /// Truncates `config.jsonl_path` if set.
  TimeSeriesRecorder(MetricsRegistry& registry, TimeSeriesConfig config);
  /// Stops the background thread (if running) and flushes the sink.
  ~TimeSeriesRecorder();

  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

  /// Close the current window: snapshot, diff, ring-append, JSONL-append.
  /// Serializes with concurrent ticks; safe alongside live writers (the
  /// snapshot is per-metric atomic — cross-metric skew is bounded by one
  /// window).
  TimeSeriesWindow tick() EXCLUDES(mu_, io_mu_);

  /// Spawn the background snapshot thread (one tick per interval_us).
  /// No-op when interval_us == 0, under CBDE_OBS_OFF, or when already
  /// running. stop() is idempotent and also run by the destructor.
  void start() EXCLUDES(mu_);
  void stop() EXCLUDES(mu_);

  /// Ring contents, oldest first.
  std::vector<TimeSeriesWindow> windows() const EXCLUDES(mu_);
  /// Ticks taken so far.
  std::uint64_t ticks() const EXCLUDES(mu_);

  /// One JSONL line (newline included) — the export schema
  /// (docs/OBSERVABILITY.md, "Time-series schema").
  static std::string to_jsonl(const TimeSeriesWindow& w);

 private:
  void run() EXCLUDES(mu_);
  TimeSeriesWindow build_window(const std::map<std::string, MetricSample>& prev,
                                const std::map<std::string, MetricSample>& cur,
                                std::uint64_t prev_wall_us, std::uint64_t wall_us,
                                std::uint64_t tick) const;

  MetricsRegistry& registry_;
  const TimeSeriesConfig config_;

  mutable Mutex mu_;
  CondVar wake_;
  bool stop_requested_ GUARDED_BY(mu_) = false;
  bool thread_running_ GUARDED_BY(mu_) = false;
  std::thread thread_ GUARDED_BY(mu_);
  std::uint64_t next_tick_ GUARDED_BY(mu_) = 1;
  std::uint64_t prev_wall_us_ GUARDED_BY(mu_) = 0;
  std::map<std::string, MetricSample> prev_ GUARDED_BY(mu_);
  std::deque<TimeSeriesWindow> ring_ GUARDED_BY(mu_);

  /// Serializes only the JSONL append; never nested with mu_ (released
  /// first) or any registry/shard/pool mutex.
  Mutex io_mu_;
  std::ofstream sink_ GUARDED_BY(io_mu_);
  bool sink_open_ = false;  ///< set in the constructor, immutable after
};

}  // namespace cbde::obs
