// Bit-level I/O for the compressed block format.
//
// Bits are written MSB-first within each byte; Huffman codes are emitted
// most-significant-bit first, which makes canonical decoding a simple
// accumulate-and-compare loop.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"
#include "util/contracts.hpp"

namespace cbde::compress {

class BitWriter {
 public:
  explicit BitWriter(util::Bytes& out) : out_(out) {}

  /// Write the low `nbits` bits of `value`, most significant first.
  void write_bits(std::uint32_t value, int nbits);

  /// Pad with zero bits to the next byte boundary.
  void align_to_byte();

  /// Write a whole byte (must be byte-aligned).
  void write_byte(std::uint8_t byte);

  bool aligned() const { return nbuffered_ == 0; }

 private:
  util::Bytes& out_;
  std::uint32_t buffer_ = 0;  // pending bits, left-aligned within nbuffered_
  int nbuffered_ = 0;
};

class BitReader {
 public:
  explicit BitReader(util::BytesView in) : in_(in) {}

  /// Read `nbits` bits (MSB-first). Throws std::invalid_argument past EOF.
  std::uint32_t read_bits(int nbits);

  /// Read a single bit.
  std::uint32_t read_bit() { return read_bits(1); }

  /// Skip to the next byte boundary.
  void align_to_byte();

  /// Read a whole byte (must be byte-aligned).
  std::uint8_t read_byte();

  /// Bytes fully or partially consumed so far.
  std::size_t position() const { return pos_; }

  bool exhausted() const { return pos_ >= in_.size() && nbuffered_ == 0; }

 private:
  util::BytesView in_;
  std::size_t pos_ = 0;
  std::uint32_t buffer_ = 0;
  int nbuffered_ = 0;
};

}  // namespace cbde::compress
