#include "compress/compressor.hpp"

#include <algorithm>
#include <array>

#include "compress/bitio.hpp"
#include "compress/huffman.hpp"
#include "compress/lz77.hpp"
#include "util/contracts.hpp"
#include "util/hash.hpp"
#include "util/varint.hpp"

namespace cbde::compress {
namespace {

constexpr std::size_t kNumLitLen = 286;  // 0-255 literals, 256 EOB, 257-285 lengths
constexpr std::size_t kNumDist = 30;
constexpr std::size_t kEob = 256;
constexpr std::size_t kBlockSize = 256 * 1024;

constexpr std::uint8_t kFlagFinal = 0x01;
constexpr std::uint8_t kFlagHuffman = 0x02;

// DEFLATE length code table: code 257+i covers lengths [base[i], base[i]+2^extra[i]).
constexpr std::array<std::uint16_t, 29> kLenBase = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::array<std::uint8_t, 29> kLenExtra = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1,
                                                    1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
                                                    4, 4, 4, 4, 5, 5, 5, 5, 0};

// DEFLATE distance code table.
constexpr std::array<std::uint16_t, 30> kDistBase = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,   25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,  769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr std::array<std::uint8_t, 30> kDistExtra = {0, 0, 0,  0,  1,  1,  2,  2,  3,  3,
                                                     4, 4, 5,  5,  6,  6,  7,  7,  8,  8,
                                                     9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

std::size_t length_code(std::size_t len) {
  CBDE_ASSERT(len >= kMinMatch && len <= kMaxMatch);
  // Last code whose base <= len.
  auto it = std::upper_bound(kLenBase.begin(), kLenBase.end(), len);
  return static_cast<std::size_t>(it - kLenBase.begin()) - 1;
}

std::size_t distance_code(std::size_t dist) {
  CBDE_ASSERT(dist >= 1 && dist <= kWindowSize);
  auto it = std::upper_bound(kDistBase.begin(), kDistBase.end(), dist);
  return static_cast<std::size_t>(it - kDistBase.begin()) - 1;
}

void write_lengths_nibbles(BitWriter& w, const std::vector<std::uint8_t>& lengths) {
  for (auto len : lengths) w.write_bits(len, 4);
}

std::vector<std::uint8_t> read_lengths_nibbles(BitReader& r, std::size_t count) {
  std::vector<std::uint8_t> lengths(count);
  for (auto& len : lengths) len = static_cast<std::uint8_t>(r.read_bits(4));
  return lengths;
}

/// Emit one block. Falls back to a stored block if the Huffman encoding
/// would be larger than the raw bytes.
void emit_block(util::Bytes& out, util::BytesView block, bool final,
                const CompressParams& params) {
  const auto tokens = lz77_tokenize(block, Lz77Params{params.max_chain, params.good_enough});

  // Stack-allocated frequency tables (2.5 KB): the old per-block vectors
  // were two heap allocations on every 256 KB of every compressed response.
  std::array<std::uint64_t, kNumLitLen> lit_freq{};
  std::array<std::uint64_t, kNumDist> dist_freq{};
  lit_freq[kEob] = 1;
  for (const Token& t : tokens) {
    if (t.length == 0) {
      ++lit_freq[t.literal];
    } else {
      ++lit_freq[257 + length_code(t.length)];
      ++dist_freq[distance_code(t.distance)];
    }
  }
  const auto lit_lengths = build_code_lengths(lit_freq);
  const auto dist_lengths = build_code_lengths(dist_freq);

  util::Bytes coded;  // alloc: ok(block-sized output buffer, reserved once below)
  coded.reserve(block.size() / 2 + (kNumLitLen + kNumDist) / 2 + 16);
  {
    BitWriter w(coded);
    write_lengths_nibbles(w, lit_lengths);
    write_lengths_nibbles(w, dist_lengths);
    HuffmanEncoder lit_enc(lit_lengths);
    HuffmanEncoder dist_enc(dist_lengths);
    for (const Token& t : tokens) {
      if (t.length == 0) {
        lit_enc.encode(w, t.literal);
      } else {
        const std::size_t lc = length_code(t.length);
        lit_enc.encode(w, 257 + lc);
        w.write_bits(static_cast<std::uint32_t>(t.length - kLenBase[lc]), kLenExtra[lc]);
        const std::size_t dc = distance_code(t.distance);
        dist_enc.encode(w, dc);
        w.write_bits(static_cast<std::uint32_t>(t.distance - kDistBase[dc]), kDistExtra[dc]);
      }
    }
    lit_enc.encode(w, kEob);
    w.align_to_byte();
  }

  if (coded.size() < block.size()) {
    out.push_back(static_cast<std::uint8_t>((final ? kFlagFinal : 0) | kFlagHuffman));
    util::append(out, util::as_view(coded));
  } else {
    out.push_back(static_cast<std::uint8_t>(final ? kFlagFinal : 0));
    util::put_uvarint(out, block.size());
    util::append(out, block);
  }
}

}  // namespace

util::Bytes compress(util::BytesView input, const CompressParams& params) {
  // Anything larger could never round-trip through decompress()'s decode cap.
  CBDE_EXPECT(input.size() <= kMaxDecompressSize);
  util::Bytes out;
  out.reserve(input.size() / 3 + 32);
  util::append(out, std::string_view("CBZ1"));
  util::put_uvarint(out, input.size());
  const std::uint32_t crc = util::crc32(input);
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));

  if (input.empty()) {
    out.push_back(kFlagFinal);  // stored, zero-length final block
    util::put_uvarint(out, 0);
    return out;
  }
  std::size_t pos = 0;
  while (pos < input.size()) {
    const std::size_t len = std::min(kBlockSize, input.size() - pos);
    const bool final = pos + len == input.size();
    emit_block(out, input.subspan(pos, len), final, params);
    pos += len;
  }
  // Header (magic + size varint + crc) plus at least one block byte.
  CBDE_ENSURE(out.size() > 9);
  return out;
}

util::Bytes decompress(util::BytesView input) {
  util::Bytes out;
  decompress_into(input, out);
  return out;
}

void decompress_into(util::BytesView input, util::Bytes& out) {
  std::size_t pos = 0;
  if (input.size() < 9 || util::as_string_view(input.subspan(0, 4)) != "CBZ1") {
    throw CorruptInput("cbz: bad magic");
  }
  pos = 4;
  const auto size = util::get_uvarint(input, pos);
  if (!size) throw CorruptInput("cbz: bad size varint");
  if (*size > kMaxDecompressSize) throw CorruptInput("cbz: claimed size exceeds decode cap");
  if (pos + 4 > input.size()) throw CorruptInput("cbz: truncated header");
  std::uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) crc |= static_cast<std::uint32_t>(input[pos++]) << (8 * i);

  out.clear();
  out.reserve(static_cast<std::size_t>(*size));
  bool final = false;
  while (!final) {
    if (pos >= input.size()) throw CorruptInput("cbz: missing block");
    const std::uint8_t flags = input[pos++];
    final = (flags & kFlagFinal) != 0;
    if ((flags & kFlagHuffman) == 0) {
      const auto len = util::get_uvarint(input, pos);
      // Subtraction-form bound: `pos + *len` wraps for 64-bit length claims.
      if (!len || *len > input.size() - pos) throw CorruptInput("cbz: bad stored block");
      util::append(out, input.subspan(pos, static_cast<std::size_t>(*len)));
      pos += static_cast<std::size_t>(*len);
      continue;
    }
    BitReader r(input.subspan(pos));
    try {
      const auto lit_lengths = read_lengths_nibbles(r, kNumLitLen);
      const auto dist_lengths = read_lengths_nibbles(r, kNumDist);
      HuffmanDecoder lit_dec(lit_lengths);
      HuffmanDecoder dist_dec(dist_lengths);
      while (true) {
        const std::size_t sym = lit_dec.decode(r);
        if (sym == kEob) break;
        if (sym < 256) {
          out.push_back(static_cast<std::uint8_t>(sym));
          continue;
        }
        const std::size_t lc = sym - 257;
        if (lc >= kLenBase.size()) throw CorruptInput("cbz: bad length code");
        const std::size_t len = kLenBase[lc] + r.read_bits(kLenExtra[lc]);
        const std::size_t dc = dist_dec.decode(r);
        if (dc >= kDistBase.size()) throw CorruptInput("cbz: bad distance code");
        const std::size_t dist = kDistBase[dc] + r.read_bits(kDistExtra[dc]);
        if (dist == 0 || dist > out.size()) throw CorruptInput("cbz: distance out of range");
        const std::size_t start = out.size() - dist;
        for (std::size_t i = 0; i < len; ++i) out.push_back(out[start + i]);
        if (out.size() > *size) throw CorruptInput("cbz: output exceeds declared size");
      }
    } catch (const std::invalid_argument& e) {
      throw CorruptInput(std::string("cbz: ") + e.what());
    }
    r.align_to_byte();
    pos += r.position();
  }
  if (out.size() != *size) throw CorruptInput("cbz: size mismatch");
  if (util::crc32(util::as_view(out)) != crc) throw CorruptInput("cbz: checksum mismatch");
  CBDE_ENSURE(out.size() <= kMaxDecompressSize);
}

std::size_t compressed_size(util::BytesView input, const CompressParams& params) {
  return compress(input, params).size();
}

}  // namespace cbde::compress
