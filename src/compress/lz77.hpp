// LZ77 match finding with hash chains (the DEFLATE approach).
//
// Produces a token stream of literals and (length, distance) matches over a
// sliding window; the block compressor entropy-codes the tokens.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace cbde::compress {

inline constexpr std::size_t kWindowSize = 32 * 1024;
inline constexpr std::size_t kMinMatch = 3;
inline constexpr std::size_t kMaxMatch = 258;

struct Token {
  // length == 0 means a literal; otherwise a back-reference.
  std::uint16_t length = 0;
  std::uint16_t distance = 0;  // 1..kWindowSize
  std::uint8_t literal = 0;
};

struct Lz77Params {
  /// Max hash-chain positions probed per match attempt (higher = better
  /// ratio, slower). DEFLATE levels roughly map 8..4096.
  std::size_t max_chain = 128;
  /// Stop probing once a match of at least this length is found.
  std::size_t good_enough = 64;
};

/// Tokenize `input`. Deterministic; no allocation beyond the output vector
/// and the hash-chain tables.
std::vector<Token> lz77_tokenize(util::BytesView input, const Lz77Params& params = {});

/// Reconstruct the original bytes from a token stream (used by tests; the
/// decompressor inlines the same logic while decoding).
util::Bytes lz77_reconstruct(const std::vector<Token>& tokens);

}  // namespace cbde::compress
