// Canonical Huffman coding.
//
// Code lengths are built from symbol frequencies with a standard two-queue
// Huffman construction, then limited to kMaxCodeLen bits by a Kraft-sum
// repair pass. Codes are assigned canonically (sorted by length, then
// symbol), so only the length vector needs to be transmitted.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "compress/bitio.hpp"

namespace cbde::compress {

inline constexpr int kMaxCodeLen = 15;

/// Build canonical code lengths for `freqs`. Symbols with zero frequency get
/// length 0 (absent). If fewer than two symbols occur, the occurring symbol
/// gets length 1 so the code is still decodable. Span-typed so callers can
/// count frequencies in a stack array instead of allocating a vector per
/// block (the per-request compress path does exactly that).
std::vector<std::uint8_t> build_code_lengths(std::span<const std::uint64_t> freqs);

/// Canonical Huffman encoder: maps symbol -> (code, length).
class HuffmanEncoder {
 public:
  /// `lengths[i]` is the code length of symbol i (0 = absent).
  explicit HuffmanEncoder(const std::vector<std::uint8_t>& lengths);

  void encode(BitWriter& w, std::size_t symbol) const;

  std::uint8_t length_of(std::size_t symbol) const { return lengths_[symbol]; }

 private:
  std::vector<std::uint8_t> lengths_;
  std::vector<std::uint32_t> codes_;
};

/// Canonical Huffman decoder (per-length first-code tables).
class HuffmanDecoder {
 public:
  explicit HuffmanDecoder(const std::vector<std::uint8_t>& lengths);

  /// Decode one symbol. Throws std::invalid_argument on invalid code.
  std::size_t decode(BitReader& r) const;

 private:
  // For each length L: first canonical code of that length, the index into
  // symbols_ where codes of length L start, and the count of such codes.
  std::uint32_t first_code_[kMaxCodeLen + 1] = {};
  std::uint32_t first_index_[kMaxCodeLen + 1] = {};
  std::uint32_t count_[kMaxCodeLen + 1] = {};
  std::vector<std::uint32_t> symbols_;  // symbols sorted by (length, symbol)
};

}  // namespace cbde::compress
