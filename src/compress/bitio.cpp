#include "compress/bitio.hpp"

namespace cbde::compress {

void BitWriter::write_bits(std::uint32_t value, int nbits) {
  CBDE_EXPECT(nbits >= 0 && nbits <= 24);
  if (nbits < 32) value &= (1u << nbits) - 1;
  buffer_ = (buffer_ << nbits) | value;
  nbuffered_ += nbits;
  while (nbuffered_ >= 8) {
    nbuffered_ -= 8;
    // alloc: ok(bytes land in the caller's output buffer, which compress() reserves up front)
    out_.push_back(static_cast<std::uint8_t>(buffer_ >> nbuffered_));
  }
  buffer_ &= (1u << nbuffered_) - 1;
}

void BitWriter::align_to_byte() {
  if (nbuffered_ > 0) write_bits(0, 8 - nbuffered_);
}

void BitWriter::write_byte(std::uint8_t byte) {
  CBDE_EXPECT(aligned());
  out_.push_back(byte);
}

std::uint32_t BitReader::read_bits(int nbits) {
  CBDE_EXPECT(nbits >= 0 && nbits <= 24);
  while (nbuffered_ < nbits) {
    if (pos_ >= in_.size()) {
      throw std::invalid_argument("BitReader: read past end of input");
    }
    buffer_ = (buffer_ << 8) | in_[pos_++];
    nbuffered_ += 8;
  }
  nbuffered_ -= nbits;
  const std::uint32_t value = (buffer_ >> nbuffered_) & ((nbits == 32 ? 0 : (1u << nbits)) - 1);
  buffer_ &= (1u << nbuffered_) - 1;
  return value;
}

void BitReader::align_to_byte() {
  buffer_ = 0;
  nbuffered_ = 0;
}

std::uint8_t BitReader::read_byte() {
  CBDE_EXPECT(nbuffered_ == 0);
  if (pos_ >= in_.size()) {
    throw std::invalid_argument("BitReader: read past end of input");
  }
  return in_[pos_++];
}

}  // namespace cbde::compress
