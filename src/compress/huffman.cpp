#include "compress/huffman.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "util/contracts.hpp"

namespace cbde::compress {
namespace {

struct Node {
  std::uint64_t freq;
  int left;    // index into node pool, -1 for leaf
  int right;   // index into node pool, -1 for leaf
  int symbol;  // valid for leaves
};

void assign_depths(const std::vector<Node>& pool, int idx, int depth,
                   std::vector<std::uint8_t>& lengths) {
  const Node& n = pool[static_cast<std::size_t>(idx)];
  if (n.left < 0) {
    lengths[static_cast<std::size_t>(n.symbol)] =
        static_cast<std::uint8_t>(std::max(depth, 1));
    return;
  }
  assign_depths(pool, n.left, depth + 1, lengths);
  assign_depths(pool, n.right, depth + 1, lengths);
}

/// Clamp lengths to kMaxCodeLen and repair the Kraft inequality so a valid
/// prefix code still exists (the zlib "bit length overflow" strategy).
void limit_lengths(std::vector<std::uint8_t>& lengths) {
  std::int64_t kraft = 0;  // sum over symbols of 2^(kMaxCodeLen - len)
  constexpr std::int64_t kOne = std::int64_t{1} << kMaxCodeLen;
  for (auto& len : lengths) {
    if (len == 0) continue;
    if (len > kMaxCodeLen) len = kMaxCodeLen;
    kraft += kOne >> len;
  }
  if (kraft <= kOne) return;
  // Over-subscribed: lengthen the shortest deep codes until Kraft holds.
  while (kraft > kOne) {
    // Find a symbol with the largest length < kMaxCodeLen and bump it.
    std::size_t best = lengths.size();
    for (std::size_t i = 0; i < lengths.size(); ++i) {
      if (lengths[i] == 0 || lengths[i] >= kMaxCodeLen) continue;
      if (best == lengths.size() || lengths[i] > lengths[best]) best = i;
    }
    CBDE_ASSERT(best < lengths.size());
    kraft -= kOne >> lengths[best];
    ++lengths[best];
    kraft += kOne >> lengths[best];
  }
}

}  // namespace

std::vector<std::uint8_t> build_code_lengths(std::span<const std::uint64_t> freqs) {
  std::vector<std::uint8_t> lengths(freqs.size(), 0);

  std::vector<Node> pool;
  pool.reserve(freqs.size() * 2);
  using Entry = std::pair<std::uint64_t, int>;  // (freq, pool index)
  // The heap never outgrows its seeded storage: n leaves go in, and every
  // merge pops two entries before pushing one.
  std::vector<Entry> heap_storage;
  heap_storage.reserve(freqs.size());
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap(
      std::greater<>{}, std::move(heap_storage));
  for (std::size_t s = 0; s < freqs.size(); ++s) {
    if (freqs[s] == 0) continue;
    pool.push_back({freqs[s], -1, -1, static_cast<int>(s)});
    // alloc: ok(pushes into the storage reserved above; bounded by the alphabet size)
    heap.emplace(freqs[s], static_cast<int>(pool.size() - 1));
  }
  if (heap.empty()) return lengths;
  if (heap.size() == 1) {
    lengths[static_cast<std::size_t>(pool[0].symbol)] = 1;
    return lengths;
  }
  while (heap.size() > 1) {
    const auto [fa, a] = heap.top();
    heap.pop();
    const auto [fb, b] = heap.top();
    heap.pop();
    pool.push_back({fa + fb, a, b, -1});
    // alloc: ok(two pops precede this push, so the reserved storage never grows)
    heap.emplace(fa + fb, static_cast<int>(pool.size() - 1));
  }
  assign_depths(pool, heap.top().second, 0, lengths);
  limit_lengths(lengths);
  return lengths;
}

HuffmanEncoder::HuffmanEncoder(const std::vector<std::uint8_t>& lengths)
    : lengths_(lengths), codes_(lengths.size(), 0) {
  // Canonical assignment: count codes per length, compute first code per
  // length, then hand out codes in symbol order.
  std::uint32_t count[kMaxCodeLen + 1] = {};
  for (auto len : lengths_) {
    CBDE_EXPECT(len <= kMaxCodeLen);
    if (len) ++count[len];
  }
  std::uint32_t next[kMaxCodeLen + 1] = {};
  std::uint32_t code = 0;
  for (int len = 1; len <= kMaxCodeLen; ++len) {
    code = (code + count[len - 1]) << 1;
    next[len] = code;
  }
  for (std::size_t s = 0; s < lengths_.size(); ++s) {
    if (lengths_[s]) codes_[s] = next[lengths_[s]]++;
  }
}

void HuffmanEncoder::encode(BitWriter& w, std::size_t symbol) const {
  CBDE_EXPECT(symbol < lengths_.size() && lengths_[symbol] > 0);
  w.write_bits(codes_[symbol], lengths_[symbol]);
}

HuffmanDecoder::HuffmanDecoder(const std::vector<std::uint8_t>& lengths) {
  for (auto len : lengths) {
    if (len > kMaxCodeLen) throw std::invalid_argument("huffman: code length > 15");
    if (len) ++count_[len];
  }
  std::uint32_t code = 0;
  std::uint32_t index = 0;
  for (int len = 1; len <= kMaxCodeLen; ++len) {
    code = (code + count_[len - 1]) << 1;
    first_code_[len] = code;
    first_index_[len] = index;
    index += count_[len];
  }
  symbols_.resize(index);
  std::uint32_t next[kMaxCodeLen + 1];
  std::copy(std::begin(first_index_), std::end(first_index_), next);
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s]) symbols_[next[lengths[s]]++] = static_cast<std::uint32_t>(s);
  }
}

std::size_t HuffmanDecoder::decode(BitReader& r) const {
  std::uint32_t code = 0;
  for (int len = 1; len <= kMaxCodeLen; ++len) {
    code = (code << 1) | r.read_bit();
    if (count_[len] != 0 && code < first_code_[len] + count_[len] && code >= first_code_[len]) {
      return symbols_[first_index_[len] + (code - first_code_[len])];
    }
  }
  throw std::invalid_argument("huffman: invalid code in stream");
}

}  // namespace cbde::compress
