// Block compressor ("cbz"): LZ77 + canonical Huffman, DEFLATE-shaped.
//
// The paper compresses deltas with gzip and attributes roughly a 2x factor
// of its savings to compression; this module provides that substrate from
// scratch. The container format is our own (magic "CBZ1"), not gzip wire
// format, but the algorithm family and achievable ratios match.
//
// Stream layout:
//   "CBZ1" | uvarint original_size | crc32(original) LE |
//   block*  where block = flags byte (bit0 final, bit1 huffman) followed by
//           either a stored run (uvarint len + raw bytes) or Huffman tables
//           (4-bit code lengths for 286 lit/len + 30 distance symbols) and a
//           token bitstream terminated by the end-of-block symbol.
#pragma once

#include <stdexcept>

#include "util/bytes.hpp"

namespace cbde::compress {

/// Thrown by decompress() on malformed or corrupt input.
class CorruptInput : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Decode-side allocation cap: decompress() rejects headers claiming more
/// than this before reserving memory, so a few framing bytes cannot demand
/// a multi-gigabyte output buffer. Mirrors delta::kMaxDecodeTargetSize.
inline constexpr std::size_t kMaxDecompressSize = std::size_t{1} << 30;  // 1 GiB

struct CompressParams {
  std::size_t max_chain = 128;    ///< LZ77 search effort
  std::size_t good_enough = 64;   ///< early-exit match length
};

/// Compress `input`. Never fails; incompressible data is emitted as stored
/// blocks with a few bytes of framing overhead.
util::Bytes compress(util::BytesView input, const CompressParams& params = {});

/// Decompress a buffer produced by compress(). Throws CorruptInput on any
/// framing, entropy-coding or checksum error.
util::Bytes decompress(util::BytesView input);

/// Zero-copy variant of decompress(): decodes into `out`, reusing the
/// caller's buffer capacity (per-worker scratch amortizes the decode
/// allocation across requests). `out` is cleared first; on throw its
/// contents are unspecified. Same validation contract as decompress();
/// fuzzed differentially against it.
void decompress_into(util::BytesView input, util::Bytes& out);

/// Convenience: size of compress(input) without keeping the output.
std::size_t compressed_size(util::BytesView input, const CompressParams& params = {});

}  // namespace cbde::compress
