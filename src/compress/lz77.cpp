#include "compress/lz77.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace cbde::compress {
namespace {

constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1u << kHashBits;

inline std::uint32_t hash3(const std::uint8_t* p) {
  // Multiplicative hash of 3 bytes.
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

inline std::size_t match_length(const std::uint8_t* a, const std::uint8_t* b,
                                std::size_t limit) {
  std::size_t n = 0;
  while (n < limit && a[n] == b[n]) ++n;
  return n;
}

}  // namespace

std::vector<Token> lz77_tokenize(util::BytesView input, const Lz77Params& params) {
  std::vector<Token> tokens;
  const std::size_t n = input.size();
  if (n == 0) return tokens;
  tokens.reserve(n / 4);

  // head[h] = most recent position with hash h (+1; 0 = none).
  // prev[i % window] = previous position with the same hash as i (+1).
  std::vector<std::uint32_t> head(kHashSize, 0);
  std::vector<std::uint32_t> prev(kWindowSize, 0);

  const std::uint8_t* data = input.data();
  std::size_t pos = 0;
  while (pos < n) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (pos + kMinMatch <= n) {
      const std::uint32_t h = hash3(data + pos);
      std::uint32_t cand = head[h];
      std::size_t chain = params.max_chain;
      const std::size_t limit = std::min(kMaxMatch, n - pos);
      while (cand != 0 && chain-- > 0) {
        const std::size_t cpos = cand - 1;
        if (pos - cpos > kWindowSize) break;
        const std::size_t len = match_length(data + cpos, data + pos, limit);
        if (len > best_len) {
          best_len = len;
          best_dist = pos - cpos;
          if (len >= params.good_enough || len == limit) break;
        }
        cand = prev[cpos % kWindowSize];
      }
      prev[pos % kWindowSize] = head[h];
      head[h] = static_cast<std::uint32_t>(pos + 1);
    }

    if (best_len >= kMinMatch) {
      tokens.push_back(Token{static_cast<std::uint16_t>(best_len),
                             static_cast<std::uint16_t>(best_dist), 0});
      // Insert hash entries for the skipped positions so later matches can
      // reference into this match.
      const std::size_t end = std::min(pos + best_len, n >= kMinMatch ? n - kMinMatch + 1 : 0);
      for (std::size_t i = pos + 1; i < end; ++i) {
        const std::uint32_t h2 = hash3(data + i);
        prev[i % kWindowSize] = head[h2];
        head[h2] = static_cast<std::uint32_t>(i + 1);
      }
      pos += best_len;
    } else {
      tokens.push_back(Token{0, 0, data[pos]});
      ++pos;
    }
  }
  return tokens;
}

util::Bytes lz77_reconstruct(const std::vector<Token>& tokens) {
  util::Bytes out;
  for (const Token& t : tokens) {
    if (t.length == 0) {
      out.push_back(t.literal);
    } else {
      CBDE_EXPECT(t.distance >= 1 && t.distance <= out.size());
      const std::size_t start = out.size() - t.distance;
      for (std::size_t i = 0; i < t.length; ++i) {
        out.push_back(out[start + i]);  // may overlap; byte-by-byte is correct
      }
    }
  }
  return out;
}

}  // namespace cbde::compress
