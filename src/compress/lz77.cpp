#include "compress/lz77.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace cbde::compress {
namespace {

constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1u << kHashBits;

inline std::uint32_t hash3(const std::uint8_t* p) {
  // Multiplicative hash of 3 bytes.
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

inline std::size_t match_length(const std::uint8_t* a, const std::uint8_t* b,
                                std::size_t limit) {
  std::size_t n = 0;
  while (n < limit && a[n] == b[n]) ++n;
  return n;
}

/// Reusable per-thread hash-chain tables (the same epoch-stamp idiom as the
/// delta encoder's SelfScratch): the 256 KB head/prev pair used to be two
/// heap allocations plus a 128 KB zeroing on *every* tokenize call — one per
/// 256 KB block of every compressed response. A head entry is live only if
/// its stamp matches the current epoch, so reuse costs nothing per call.
struct ChainScratch {
  std::vector<std::uint32_t> head;
  std::vector<std::uint32_t> stamp;
  std::vector<std::uint32_t> prev;
  std::uint32_t epoch = 0;
};

ChainScratch& chain_scratch() {
  thread_local ChainScratch scratch;
  return scratch;
}

}  // namespace

std::vector<Token> lz77_tokenize(util::BytesView input, const Lz77Params& params) {
  std::vector<Token> tokens;  // alloc: ok(token stream is the function's output)
  const std::size_t n = input.size();
  if (n == 0) return tokens;
  tokens.reserve(n / 4);

  // head[h] = most recent position with hash h (+1; 0 = none, i.e. a stale
  // stamp). prev[i % window] = previous position with the same hash as i
  // (+1); only values taken from a live head entry are ever stored, so prev
  // needs no stamps of its own.
  ChainScratch& scratch = chain_scratch();
  if (scratch.head.empty()) {
    scratch.head.assign(kHashSize, 0);
    scratch.stamp.assign(kHashSize, 0);
    scratch.prev.assign(kWindowSize, 0);
  }
  if (++scratch.epoch == 0) {  // stamp wrap: invalidate everything once
    std::fill(scratch.stamp.begin(), scratch.stamp.end(), 0u);
    scratch.epoch = 1;
  }
  const std::uint32_t epoch = scratch.epoch;
  std::uint32_t* const head = scratch.head.data();
  std::uint32_t* const stamp = scratch.stamp.data();
  std::uint32_t* const prev = scratch.prev.data();
  const auto live_head = [&](std::uint32_t h) -> std::uint32_t {
    return stamp[h] == epoch ? head[h] : 0;
  };

  const std::uint8_t* data = input.data();
  std::size_t pos = 0;
  while (pos < n) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (pos + kMinMatch <= n) {
      const std::uint32_t h = hash3(data + pos);
      std::uint32_t cand = live_head(h);
      std::size_t chain = params.max_chain;
      const std::size_t limit = std::min(kMaxMatch, n - pos);
      while (cand != 0 && chain-- > 0) {
        const std::size_t cpos = cand - 1;
        if (pos - cpos > kWindowSize) break;
        const std::size_t len = match_length(data + cpos, data + pos, limit);
        if (len > best_len) {
          best_len = len;
          best_dist = pos - cpos;
          if (len >= params.good_enough || len == limit) break;
        }
        cand = prev[cpos % kWindowSize];
      }
      prev[pos % kWindowSize] = live_head(h);
      head[h] = static_cast<std::uint32_t>(pos + 1);
      stamp[h] = epoch;
    }

    if (best_len >= kMinMatch) {
      tokens.push_back(Token{static_cast<std::uint16_t>(best_len),
                             static_cast<std::uint16_t>(best_dist), 0});
      // Insert hash entries for the skipped positions so later matches can
      // reference into this match.
      const std::size_t end = std::min(pos + best_len, n >= kMinMatch ? n - kMinMatch + 1 : 0);
      for (std::size_t i = pos + 1; i < end; ++i) {
        const std::uint32_t h2 = hash3(data + i);
        prev[i % kWindowSize] = live_head(h2);
        head[h2] = static_cast<std::uint32_t>(i + 1);
        stamp[h2] = epoch;
      }
      pos += best_len;
    } else {
      tokens.push_back(Token{0, 0, data[pos]});
      ++pos;
    }
  }
  return tokens;
}

util::Bytes lz77_reconstruct(const std::vector<Token>& tokens) {
  util::Bytes out;
  std::size_t total = 0;
  for (const Token& t : tokens) total += t.length == 0 ? 1 : t.length;
  out.reserve(total);
  for (const Token& t : tokens) {
    if (t.length == 0) {
      out.push_back(t.literal);
    } else {
      CBDE_EXPECT(t.distance >= 1 && t.distance <= out.size());
      const std::size_t start = out.size() - t.distance;
      for (std::size_t i = 0; i < t.length; ++i) {
        out.push_back(out[start + i]);  // may overlap; byte-by-byte is correct
      }
    }
  }
  return out;
}

}  // namespace cbde::compress
