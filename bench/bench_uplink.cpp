// §VI-C closing claim — "in practice it is very common that the bottleneck
// resource at a web-server is the access link out of the web-site and not
// the CPU. This further reduces the significance of the CPU overhead."
//
// The event-driven queueing pipeline replays one request stream at rising
// offered load over a 10 Mb/s site uplink, in direct mode and with the
// delta-server. Direct service saturates the uplink at a few tens of
// requests/second (40 KB pages); class-based delta-encoding pushes the
// saturation point an order of magnitude further out, trading a little CPU
// for the scarce link — the paper's argument made quantitative.
#include <cstdio>

#include "bench_common.hpp"
#include "core/event_pipeline.hpp"

int main() {
  using namespace cbde;
  using cbde::bench::print_rule;
  using cbde::bench::print_title;

  print_title(
      "SVI-C uplink -- offered load vs goodput / latency / uplink utilization,\n"
      "direct vs class-based delta-encoding (10 Mb/s site access link)");

  trace::SiteConfig sconfig;
  sconfig.host = "www.uplink.example";
  sconfig.categories = {"catalog", "news"};
  sconfig.docs_per_category = 40;
  const trace::SiteModel site(sconfig);
  server::OriginServer origin;
  origin.add_site(site);

  std::printf("%14s | %28s | %28s\n", "", "direct", "with CBDE");
  std::printf("%14s | %9s %9s %8s | %9s %9s %8s\n", "offered req/s", "goodput",
              "p90 lat s", "uplink", "goodput", "p90 lat s", "uplink");
  print_rule(80);

  double direct_knee = 0;  // last offered load where p90 stays < 3x unloaded
  double cbde_knee = 0;
  double direct_unloaded_p90 = 0;
  double cbde_unloaded_p90 = 0;

  for (const double offered : {5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0}) {
    trace::WorkloadConfig wconfig;
    wconfig.num_requests = 2000;
    wconfig.num_users = 400;
    wconfig.mean_interarrival_us = 1e6 / offered;
    wconfig.seed = 99;
    const auto requests = trace::WorkloadGenerator(site, wconfig).generate();

    double row[2][3];
    for (const bool use_cbde : {false, true}) {
      http::RuleBook rules;
      rules.add_rule(sconfig.host, site.partition_rule());
      core::EventPipelineConfig config;
      config.use_cbde = use_cbde;
      core::EventPipeline pipeline(origin, config, std::move(rules));
      const auto result = pipeline.run(requests);
      row[use_cbde][0] = result.goodput_rps;
      row[use_cbde][1] = result.latency_us.percentile(0.9) / 1e6;
      row[use_cbde][2] = result.uplink_utilization;
    }
    std::printf("%14.0f | %9.1f %9.2f %7.0f%% | %9.1f %9.2f %7.0f%%\n", offered,
                row[0][0], row[0][1], row[0][2] * 100.0, row[1][0], row[1][1],
                row[1][2] * 100.0);

    if (offered == 5.0) {
      direct_unloaded_p90 = row[0][1];
      cbde_unloaded_p90 = row[1][1];
    }
    if (row[0][1] < direct_unloaded_p90 * 3) direct_knee = offered;
    if (row[1][1] < cbde_unloaded_p90 * 3) cbde_knee = offered;
  }

  std::printf(
      "\nsaturation knee (p90 latency < 3x unloaded): direct ~%.0f req/s, CBDE "
      "~%.0f req/s (%.0fx further)\n",
      direct_knee, cbde_knee, cbde_knee / std::max(direct_knee, 1.0));
  std::printf(
      "\nShape check: direct service is pinned by the access link (100%% uplink at\n"
      "the knee); with CBDE the uplink stays far from saturation and the binding\n"
      "resource becomes the CPU -- which is exactly the trade the paper argues\n"
      "for (\"CPU is cheap in comparison to the cost of access links\").\n");
  return cbde_knee >= direct_knee * 4 ? 0 : 1;
}
