// Ablations over the design choices DESIGN.md calls out:
//   A. light vs full delta estimation inside the grouping search
//      (§III fn.2: "a light version ... to reduce computation cost");
//   B. base-file selector eviction variants (§IV fn.3);
//   C. rebase-timeout sweep ("to control the number of rebases");
//   D. anonymization M sweep for fixed N (§V: "values of M close to N
//      significantly reduce the size of the base-file");
//   E. grouping popular-fraction a sweep (§III: a*N popular tries).
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "core/anonymizer.hpp"
#include "core/simulation.hpp"
#include "proxy/gd_cache.hpp"
#include "util/zipf.hpp"

namespace {

using namespace cbde;
using util::Bytes;

trace::SiteModel make_site(std::uint64_t seed = 9000) {
  trace::SiteConfig config;
  config.host = "www.ablate.example";
  config.categories = {"alpha", "beta", "gamma", "delta"};
  config.docs_per_category = 40;
  config.seed = seed;
  return trace::SiteModel(config);
}

core::PipelineReport run_pipeline(const trace::SiteModel& site,
                                  const core::PipelineConfig& config,
                                  std::size_t requests = 1500) {
  server::OriginServer origin;
  origin.add_site(site);
  http::RuleBook rules;
  rules.add_rule(site.config().host, site.partition_rule());
  trace::WorkloadConfig wconfig;
  wconfig.num_requests = requests;
  wconfig.num_users = 120;
  core::Pipeline pipeline(origin, config, rules);
  pipeline.process_all(trace::WorkloadGenerator(site, wconfig).generate());
  return pipeline.report();
}

void ablation_light_vs_full() {
  std::printf("\nA. grouping estimator: light vs full delta (cost of the search)\n");
  const auto site = make_site();
  for (const bool light : {true, false}) {
    core::PipelineConfig config;
    config.measure_latency = false;
    config.server.grouping.light_params =
        light ? delta::DeltaParams::light() : delta::DeltaParams::full();
    const auto t0 = std::chrono::steady_clock::now();
    const auto report = run_pipeline(site, config);
    const auto t1 = std::chrono::steady_clock::now();
    std::printf("  %-6s estimator: classes=%zu savings=%5.1f%%  wall=%.2fs\n",
                light ? "light" : "full", report.num_classes,
                report.origin_savings() * 100.0,
                std::chrono::duration<double>(t1 - t0).count());
  }
  std::printf("  (same grouping quality; the light estimator is what makes the\n"
              "   N-try search affordable)\n");
}

void ablation_eviction() {
  std::printf("\nB. selector eviction policy (SIV fn.3 variants)\n");
  const auto site = make_site();
  using Ev = core::SelectorConfig::Eviction;
  constexpr std::pair<Ev, const char*> kPolicies[] = {
      {Ev::kWorst, "worst"},
      {Ev::kPeriodicRandom, "periodic-random"},
      {Ev::kTwoSet, "two-set"}};
  for (const auto& [policy, name] : kPolicies) {
    core::PipelineConfig config;
    config.measure_latency = false;
    config.server.selector.eviction = policy;
    config.server.selector.sample_prob = 0.3;
    const auto report = run_pipeline(site, config);
    std::printf("  %-16s savings=%5.1f%%  group-rebases=%llu\n", name,
                report.origin_savings() * 100.0,
                static_cast<unsigned long long>(report.server.group_rebases));
  }
}

void ablation_rebase_timeout() {
  std::printf("\nC. rebase-timeout sweep (controls rebase rate vs base-refetch cost)\n");
  const auto site = make_site();
  for (const long seconds : {5L, 30L, 120L, 600L}) {
    core::PipelineConfig config;
    config.measure_latency = false;
    config.server.rebase_timeout = seconds * util::kSecond;
    config.server.selector.sample_prob = 0.3;
    const auto report = run_pipeline(site, config);
    std::printf(
        "  timeout=%4lds: savings=%5.1f%%  rebases=%3llu  base KB (origin+proxy)=%6.0f\n",
        seconds, report.origin_savings() * 100.0,
        static_cast<unsigned long long>(report.server.group_rebases +
                                        report.server.basic_rebases),
        cbde::bench::to_kb(report.origin_base_bytes + report.proxy_base_bytes));
  }
}

void ablation_anonymization_m() {
  std::printf("\nD. anonymization M sweep at N=12 (base shrinkage vs delta growth)\n");
  trace::TemplateConfig tconfig;
  tconfig.personal_bytes = 1600;  // heavily personalized portal
  tconfig.private_bytes = 256;
  const trace::DocumentTemplate tmpl(4242, tconfig);
  const Bytes base = tmpl.generate(0, 1, 0);
  std::vector<Bytes> pool;
  for (std::uint64_t user = 50; user < 62; ++user) {
    pool.push_back(tmpl.generate(0, user, 0));
  }
  const Bytes probe = tmpl.generate(0, 99, 0);
  for (const std::size_t m : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{4}, std::size_t{8}, std::size_t{12}}) {
    const Bytes anon = core::anonymize_against(util::as_view(base), pool, m);
    const auto d =
        delta::encode(util::as_view(anon), util::as_view(probe)).delta.size();
    std::printf("  M=%2zu: base %6zu -> %6zu bytes, delta to fresh doc %5zu bytes\n", m,
                base.size(), anon.size(), d);
  }
  std::printf("  (M=0 keeps everything; M=N strips all personalization and inflates\n"
              "   deltas -- the paper's rule of thumb N >= 2M sits in the knee)\n");
}

void ablation_popular_fraction() {
  std::printf("\nE. grouping popular-fraction a sweep (share of tries on popular classes)\n");
  const auto site = make_site();
  for (const double a : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    core::PipelineConfig config;
    config.measure_latency = false;
    config.server.grouping.popular_fraction = a;
    server::OriginServer origin;
    origin.add_site(site);
    http::RuleBook rules;
    rules.add_rule(site.config().host, site.partition_rule());
    trace::WorkloadConfig wconfig;
    wconfig.num_requests = 1500;
    wconfig.num_users = 120;
    core::Pipeline pipeline(origin, config, rules);
    pipeline.process_all(trace::WorkloadGenerator(site, wconfig).generate());
    const auto report = pipeline.report();
    const auto tries = pipeline.delta_server().grouping_stats().tries;
    double mean_tries = 0;
    for (std::size_t t = 0; t < tries.buckets(); ++t) {
      mean_tries += static_cast<double>(t) * static_cast<double>(tries.bucket(t));
    }
    mean_tries /= static_cast<double>(tries.total());
    std::printf("  a=%.2f: classes=%zu  mean tries=%.2f  savings=%5.1f%%\n", a,
                report.num_classes, mean_tries, report.origin_savings() * 100.0);
  }
}

void ablation_proxy_policy() {
  std::printf("\nF. proxy replacement policy for cachable objects (paper cites\n"
              "   greedy-dual caching [11])\n");
  util::Rng rng(515);
  const util::ZipfSampler zipf(500, 1.0);
  std::vector<std::size_t> sizes(500);
  for (auto& s : sizes) s = 1024 + rng.next_below(80 * 1024);

  proxy::LruCache lru(512 * 1024);
  proxy::GreedyDualCache gdsf(512 * 1024);
  for (int i = 0; i < 30000; ++i) {
    const std::size_t obj = zipf.sample(rng);
    const std::string key = "o" + std::to_string(obj);
    if (!lru.get(key)) lru.put(key, Bytes(sizes[obj], 'l'));
    if (!gdsf.get(key)) gdsf.put(key, Bytes(sizes[obj], 'g'));
  }
  std::printf("  LRU : hit rate %.1f%%  bytes served %.1f MB\n",
              lru.stats().hit_rate() * 100.0,
              static_cast<double>(lru.stats().bytes_served) / 1e6);
  std::printf("  GDSF: hit rate %.1f%%  bytes served %.1f MB\n",
              gdsf.stats().hit_rate() * 100.0,
              static_cast<double>(gdsf.stats().bytes_served) / 1e6);
}

}  // namespace

int main() {
  cbde::bench::print_title("Ablations over the paper's design choices");
  ablation_light_vs_full();
  ablation_eviction();
  ablation_rebase_timeout();
  ablation_anonymization_m();
  ablation_popular_fraction();
  ablation_proxy_policy();
  return 0;
}
