// Table III — average delta sizes resulting from various algorithms that
// identify base-files for classes.
//
// The paper compares, over five random permutations of one request
// sequence: (a) using the first response as the base-file, (b) the
// randomized online algorithm of §IV (8 samples, sampling probability 0.2),
// and (c) the online optimal algorithm that always uses the document
// minimizing the average delta so far. Paper's rows (bytes):
//   perm:     1     2     3     4     5
//   first:   1704  1774  1785  1876  2025
//   rand:    1559  1636  1599  1626  1679
//   opt:     1406  1540  1515  1542  1575
//
// We rebuild the setting: one class of documents sharing a paragraph pool
// with per-document coverage (so base-file choice genuinely matters), serve
// the same shuffled sequence under each policy, and report the average
// delta size per served request.
#include <cstdio>

#include "bench_common.hpp"
#include "core/basefile_selector.hpp"
#include "trace/document.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace {

using namespace cbde;
using util::Bytes;

/// A class worth of documents: every document carries a subset of a shared
/// paragraph pool plus a small unique tail — the base covering the most
/// popular paragraphs minimizes the average delta.
std::vector<Bytes> make_class_documents(std::size_t n) {
  // Sized to the paper's regime: documents in the tens of KB whose deltas
  // against a good base land in the 1.4-2 KB band of Table III.
  std::vector<std::string> paragraphs;
  for (std::size_t p = 0; p < 48; ++p) {
    paragraphs.push_back(trace::synth_prose(7000 + p, 280));
  }
  std::vector<Bytes> docs;
  util::Rng rng(2024);
  for (std::size_t k = 0; k < n; ++k) {
    std::string s = "<html><body>\n";
    for (std::size_t p = 0; p < paragraphs.size(); ++p) {
      if (rng.next_double() < 0.8) s += paragraphs[p];
    }
    s += trace::synth_prose(8100 + k, 140);
    s += "</body></html>\n";
    docs.push_back(util::to_bytes(s));
  }
  return docs;
}

double run_policy(core::BasePolicy& policy, const std::vector<Bytes>& sequence) {
  double total = 0;
  std::size_t served = 0;
  for (const Bytes& doc : sequence) {
    if (const Bytes* base = policy.current_base()) {
      total += static_cast<double>(
          delta::encode(util::as_view(*base), util::as_view(doc)).delta.size());
      ++served;
    }
    policy.observe(util::as_view(doc));
  }
  return served == 0 ? 0.0 : total / static_cast<double>(served);
}

}  // namespace

int main() {
  using cbde::bench::print_rule;
  using cbde::bench::print_title;

  print_title(
      "Table III -- average delta sizes (bytes) per base-file policy over five\n"
      "permutations of one request sequence (paper: first>randomized>online-optimal)");

  const auto docs = make_class_documents(60);
  // Requests: 180 draws over the class documents with mild popularity skew.
  std::vector<Bytes> base_sequence;
  {
    util::Rng rng(5150);
    util::ZipfSampler zipf(docs.size(), 0.7);
    for (int i = 0; i < 180; ++i) base_sequence.push_back(docs[zipf.sample(rng)]);
  }

  struct PaperRow {
    int first, rand, opt;
  };
  const PaperRow paper[5] = {{1704, 1559, 1406},
                             {1774, 1636, 1540},
                             {1785, 1599, 1515},
                             {1876, 1626, 1542},
                             {2025, 1679, 1575}};

  std::printf("%-5s | %22s | %22s | %22s\n", "", "first response", "randomized (K=8,p=.2)",
              "online optimal");
  std::printf("%-5s | %10s %10s | %10s %10s | %10s %10s\n", "perm", "paper", "ours",
              "paper", "ours", "paper", "ours");
  print_rule(80);

  int order_violations = 0;
  for (int perm = 0; perm < 5; ++perm) {
    std::vector<Bytes> sequence = base_sequence;
    util::Rng rng(900 + perm);
    rng.shuffle(sequence);

    core::FirstResponsePolicy first;
    core::SelectorConfig sconfig;
    sconfig.max_samples = 8;     // "a total of 8 samples"
    sconfig.sample_prob = 0.2;   // "probability ... equal to 0.2"
    core::RandomizedPolicy randomized(sconfig, 4242 + perm);
    core::OnlineOptimalPolicy optimal;

    const double avg_first = run_policy(first, sequence);
    const double avg_rand = run_policy(randomized, sequence);
    const double avg_opt = run_policy(optimal, sequence);

    std::printf("%-5d | %10d %10.0f | %10d %10.0f | %10d %10.0f\n", perm + 1,
                paper[perm].first, avg_first, paper[perm].rand, avg_rand,
                paper[perm].opt, avg_opt);
    if (!(avg_opt <= avg_rand * 1.02 && avg_rand <= avg_first * 1.02)) {
      ++order_violations;
    }
  }
  std::printf(
      "\nShape check: online-optimal <= randomized <= first-response on each row\n"
      "(paper's ordering); violations beyond 2%% tolerance: %d of 5 permutations.\n",
      order_violations);
  return order_violations > 1 ? 1 : 0;
}
