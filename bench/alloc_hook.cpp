#include "alloc_hook.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

// atomic: counter — per-allocation bump; readers only ever look at deltas
// across quiesced regions, so relaxed is sufficient.
std::atomic<std::uint64_t> g_allocs{0};

void* counted_malloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size > 0 ? size : 1);
}

void* counted_aligned(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  // posix_memalign needs alignment to be a multiple of sizeof(void*);
  // extended-alignment requests are always at least that.
  std::size_t al = static_cast<std::size_t>(align);
  if (al < sizeof(void*)) al = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, al, size > 0 ? size : 1) != 0) return nullptr;
  return p;
}

}  // namespace

namespace cbde::bench {

std::uint64_t alloc_count() { return g_allocs.load(std::memory_order_relaxed); }
bool alloc_hook_active() { return true; }

}  // namespace cbde::bench

void* operator new(std::size_t size) {
  if (void* p = counted_malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (void* p = counted_malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_malloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  if (void* p = counted_aligned(size, align)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  if (void* p = counted_aligned(size, align)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned(size, align);
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
