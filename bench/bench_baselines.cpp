// §I comparison — CBDE against the schemes the paper's introduction
// measures itself against, on one identical request stream:
//
//   * full transfer (status quo)
//   * gzip-only            (paper: compression is worth ~2x on average)
//   * HPP, Douglis et al.  (paper: "network transfers are typically 2 to 8
//                           times smaller than the original sizes" and
//                           "delta-encoding exploits more redundancy")
//   * classless delta-encoding (maximal redundancy, unbounded storage — the
//                           scalability problem of §II)
//   * class-based delta-encoding (this paper)
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/baselines.hpp"
#include "core/simulation.hpp"

int main() {
  using namespace cbde;
  using cbde::bench::print_rule;
  using cbde::bench::print_title;
  using cbde::bench::to_kb;

  print_title(
      "SI baselines -- identical workload under full / gzip / HPP / classless\n"
      "delta / class-based delta (paper: gzip ~2x, HPP 2-8x, delta 20-30x)");

  trace::SiteConfig sconfig;
  sconfig.host = "www.baseline.example";
  sconfig.categories = {"laptops", "desktops", "monitors"};
  sconfig.docs_per_category = 50;
  // Commercial-site mix (matching the Table II configuration).
  sconfig.doc_template.skeleton_bytes = 33000;
  sconfig.doc_template.doc_unique_bytes = 1300;
  sconfig.doc_template.volatile_bytes = 650;
  sconfig.doc_template.personal_bytes = 370;
  sconfig.doc_template.cohort_bytes = 280;
  const trace::SiteModel site(sconfig);
  server::OriginServer origin;
  origin.add_site(site);
  http::RuleBook rules;
  rules.add_rule(sconfig.host, site.partition_rule());

  trace::WorkloadConfig wconfig;
  wconfig.num_requests = 4000;
  wconfig.num_users = 180;
  wconfig.zipf_alpha = 1.0;
  wconfig.revisit_prob = 0.6;
  const auto requests = trace::WorkloadGenerator(site, wconfig).generate();

  std::vector<std::unique_ptr<core::TrafficBaseline>> baselines;
  baselines.push_back(std::make_unique<core::FullTransferBaseline>(origin));
  baselines.push_back(std::make_unique<core::GzipOnlyBaseline>(origin));
  baselines.push_back(std::make_unique<core::HppBaseline>(origin));
  baselines.push_back(std::make_unique<core::ClasslessDeltaBaseline>(origin));

  core::PipelineConfig config;
  config.measure_latency = false;
  core::Pipeline cbde_pipeline(origin, config, rules);

  for (const auto& req : requests) {
    for (auto& baseline : baselines) baseline->process(req.user_id, req.url, req.time);
    cbde_pipeline.process(req.user_id, req.url, req.time);
  }

  std::printf("%-18s %12s %12s %10s %12s\n", "scheme", "wire KB", "savings",
              "reduction", "storage KB");
  print_rule(70);
  double gzip_factor = 0;
  double hpp_factor = 0;
  for (const auto& baseline : baselines) {
    const auto& c = baseline->counters();
    std::printf("%-18s %12.0f %11.1f%% %9.1fx %12.0f\n",
                std::string(baseline->name()).c_str(), to_kb(c.wire_bytes),
                c.savings() * 100.0, c.reduction_factor(),
                to_kb(baseline->storage_bytes()));
    if (baseline->name() == "gzip-only") gzip_factor = c.reduction_factor();
    if (baseline->name() == "hpp") hpp_factor = c.reduction_factor();
  }
  const auto report = cbde_pipeline.report();
  const double cbde_wire =
      static_cast<double>(report.server.wire_bytes + report.origin_base_bytes);
  const double cbde_factor = static_cast<double>(report.server.direct_bytes) / cbde_wire;
  std::printf("%-18s %12.0f %11.1f%% %9.1fx %12.0f\n", "class-based delta",
              cbde_wire / 1024.0, report.origin_savings() * 100.0, cbde_factor,
              to_kb(report.storage_bytes));

  std::printf(
      "\nShape check: gzip ~2x (paper: \"a factor of 2\"), HPP in the 2-8x band\n"
      "(paper quotes Douglis et al.), class-based delta an order of magnitude\n"
      "beyond HPP and within reach of classless delta at a fraction of its storage.\n");
  const bool ok = gzip_factor > 1.8 && gzip_factor < 6.0 && hpp_factor >= 2.0 &&
                  hpp_factor <= 12.0 && cbde_factor > hpp_factor &&
                  report.storage_bytes * 3 <
                      baselines.back()->storage_bytes();
  std::printf("%s\n", ok ? "shape OK" : "SHAPE CHECK FAILED");
  return ok ? 0 : 1;
}
