// Counting global operator new hook (bench/alloc_hook.cpp).
//
// Link alloc_hook.cpp into a binary and every operator new (scalar, array,
// nothrow, aligned) bumps one process-wide counter before delegating to
// malloc. The counter turns the static allocation inventory
// (tools/analyze/cbde_sema.py --allocs) into a measured
// allocations-per-request figure: snapshot alloc_count() around a request
// loop and divide.
//
// Deliberately linked ONLY into bench_perf_report and alloc_budget_test —
// the hook replaces the global allocator, which the regular test binary has
// no reason to pay for.
#pragma once

#include <cstdint>

namespace cbde::bench {

/// Number of operator-new calls in this process so far. Monotonic;
/// meaningful as a delta around a quiesced region of interest.
std::uint64_t alloc_count();

/// True when the counting hook is linked in (alloc_hook.cpp defines this to
/// return true; there is no counterfeit default — a binary that does not
/// link the hook fails to link alloc_count() instead of silently measuring
/// zero).
bool alloc_hook_active();

}  // namespace cbde::bench
