// Table II — bandwidth savings using access logs from three commercial
// web-sites.
//
// The paper reports, per site: total requests, direct outbound KB, outbound
// KB with class-based delta-encoding + gzip, and the savings percentage
// (94.8% / 95.0% / 97.1%). The sites themselves are withheld ("due to
// privacy concerns, we are unable to provide the URLs"), so we model three
// synthetic commercial sites with the same request counts and per-request
// document sizes as the published rows, and replay each trace through the
// full pipeline (origin -> delta-server -> proxy -> clients, every delta
// verified by reconstruction).
#include <cstdio>

#include "bench_common.hpp"
#include "core/simulation.hpp"

namespace {

using namespace cbde;

struct SiteSpec {
  const char* label;
  std::size_t requests;
  double paper_direct_kb;
  double paper_delta_kb;
  double paper_savings;  // percent
  trace::SiteConfig site;
  std::size_t num_users;
};

/// Commercial-catalog content mix: a large shared template per category
/// with a thin dynamic fraction, as the paper's 30-50 KB documents with
/// 1-3 KB gzipped deltas imply.
trace::TemplateConfig catalog_template(std::size_t page_bytes) {
  // Prose rendering and markup overshoot the byte budgets by ~25%, so the
  // shares below are chosen to land near the paper's per-request document
  // sizes with a dynamic fraction thin enough for its 94-97% savings.
  trace::TemplateConfig config;
  config.skeleton_bytes = page_bytes * 82 / 100;
  config.doc_unique_bytes = page_bytes * 28 / 1000;
  config.volatile_bytes = page_bytes * 14 / 1000;
  config.personal_bytes = page_bytes * 8 / 1000;
  config.cohort_bytes = page_bytes * 6 / 1000;
  config.private_bytes = 96;
  // Catalog pages have a handful of dynamic regions, not dozens; fewer
  // islands keep the delta instruction stream from fragmenting.
  config.num_sections = 10;
  return config;
}

std::vector<SiteSpec> make_specs() {
  std::vector<SiteSpec> specs;
  {
    // Site 1: 16407 requests, ~45 KB average document.
    SiteSpec spec{"site 1", 16407, 736495, 38308, 94.8, {}, 600};
    spec.site.host = "www.site1.example";
    spec.site.style = trace::UrlStyle::kPathSegment;
    spec.site.categories = {"laptops", "desktops", "monitors", "printers"};
    spec.site.docs_per_category = 60;
    spec.site.doc_template = catalog_template(45 * 1024);
    spec.site.seed = 1001;
    specs.push_back(spec);
  }
  {
    // Site 2: 1476 requests, ~34 KB average document.
    SiteSpec spec{"site 2", 1476, 49536, 2474, 95.0, {}, 120};
    spec.site.host = "www.site2.example";
    spec.site.style = trace::UrlStyle::kQueryParam;
    spec.site.categories = {"news", "sports"};
    spec.site.docs_per_category = 40;
    spec.site.doc_template = catalog_template(34 * 1024);
    spec.site.seed = 1002;
    specs.push_back(spec);
  }
  {
    // Site 3: 7460 requests, ~31 KB average document; the most redundant
    // site in the paper (97.1% savings) -> thinner dynamic fraction.
    SiteSpec spec{"site 3", 7460, 230840, 6640, 97.1, {}, 300};
    spec.site.host = "www.site3.example";
    spec.site.style = trace::UrlStyle::kPathOnly;
    spec.site.categories = {"articles", "archive", "topics"};
    spec.site.docs_per_category = 50;
    auto& tc = spec.site.doc_template;
    tc = catalog_template(31 * 1024);
    tc.doc_unique_bytes = 31 * 1024 * 15 / 1000;  // thinner per-doc content
    tc.personal_bytes = 0;                        // no personalization
    tc.cohort_bytes = 0;
    tc.private_bytes = 0;
    spec.site.seed = 1003;
    specs.push_back(spec);
  }
  return specs;
}

}  // namespace

int main() {
  using cbde::bench::print_rule;
  using cbde::bench::print_title;
  using cbde::bench::to_kb;

  print_title(
      "Table II -- bandwidth savings, access-log replay through the full pipeline\n"
      "(paper: ICDCS'02 Table II; delta-encoding + compression vs direct)");

  std::printf("%-8s %9s | %12s %12s %8s | %12s %12s %8s\n", "", "", "paper", "paper",
              "paper", "ours", "ours", "ours");
  std::printf("%-8s %9s | %12s %12s %8s | %12s %12s %8s\n", "site", "requests",
              "direct KB", "delta KB", "savings", "direct KB", "delta KB", "savings");
  print_rule(96);

  for (const auto& spec : make_specs()) {
    const trace::SiteModel site(spec.site);
    server::OriginServer origin;
    origin.add_site(site);
    http::RuleBook rules;
    rules.add_rule(spec.site.host, site.partition_rule());

    core::PipelineConfig config;
    config.server.seed = spec.site.seed;
    config.measure_latency = false;

    trace::WorkloadConfig wconfig;
    wconfig.num_requests = spec.requests;
    wconfig.num_users = spec.num_users;
    wconfig.zipf_alpha = 1.0;
    wconfig.revisit_prob = 0.6;
    wconfig.seed = spec.site.seed * 7;

    core::Pipeline pipeline(origin, config, rules);
    pipeline.process_all(trace::WorkloadGenerator(site, wconfig).generate());
    const auto report = pipeline.report();

    const double direct_kb = to_kb(report.server.direct_bytes);
    const double sent_kb = to_kb(report.server.wire_bytes + report.origin_base_bytes);
    const double savings = report.origin_savings() * 100.0;

    std::printf("%-8s %9zu | %12.0f %12.0f %7.1f%% | %12.0f %12.0f %7.1f%%\n",
                spec.label, spec.requests, spec.paper_direct_kb, spec.paper_delta_kb,
                spec.paper_savings, direct_kb, sent_kb, savings);
    std::printf(
        "         classes=%zu  verified=%llu/%llu  proxy-served base KB=%.0f  "
        "rebases(g/b)=%llu/%llu\n",
        report.num_classes, static_cast<unsigned long long>(report.verified),
        static_cast<unsigned long long>(report.server.delta_responses),
        to_kb(report.proxy_base_bytes),
        static_cast<unsigned long long>(report.server.group_rebases),
        static_cast<unsigned long long>(report.server.basic_rebases));
    if (report.verify_failures != 0) {
      std::printf("         WARNING: %llu reconstruction failures!\n",
                  static_cast<unsigned long long>(report.verify_failures));
      return 1;
    }
  }
  std::printf(
      "\nShape check: savings in the 93-97%% band (paper: 94.8-97.1%%), site 3 the\n"
      "most redundant; direct KB per request matches the paper's document sizes.\n");
  return 0;
}
