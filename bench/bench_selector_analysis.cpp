// §IV analysis — probability that the randomized base-file algorithm
// discards the best candidate.
//
// The paper models candidate comparisons as noisy: for stored documents
// i1 < i2 (indexed by true quality), the algorithm mistakes their order
// with probability c/|i1-i2| where c normalizes sum_{i=1}^{N-1} 1/i = 1.
// It bounds the probability of ever evicting the true best candidate by
//   P_error <= (N-K) / ((ln N)^{K-1} (K-1)!)
// and evaluates the example R=1e5, p=1e-2, K=10 => N=1000, P<=8e-11.
//
// We simulate that exact stochastic process (noisy pairwise order at
// eviction time) and compare the measured error rate against the bound for
// parameter ranges where the rate is measurable, then print the paper's
// example row (which is far below what any simulation could resolve).
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "util/rng.hpp"

namespace {

using namespace cbde;

double harmonic(std::size_t n) {
  double h = 0;
  for (std::size_t i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
  return h;
}

/// One run of the abstract §IV process: N candidates arrive (random quality
/// order), K are stored. On overflow the believed-worst is evicted; the
/// paper's error event is "the true best candidate is believed worse than
/// EVERY other stored document", each pairwise belief flipping independently
/// with probability c/|i1-i2| (quality-rank distance). Returns true if the
/// true best candidate (rank 1) was ever evicted.
bool simulate_once(std::size_t n, std::size_t k, double c, util::Rng& rng) {
  std::vector<std::size_t> arrival(n);
  for (std::size_t i = 0; i < n; ++i) arrival[i] = i + 1;  // quality ranks 1..N
  rng.shuffle(arrival);

  std::vector<std::size_t> stored;
  for (const std::size_t rank : arrival) {
    stored.push_back(rank);
    if (stored.size() <= k) continue;

    const auto best_it = std::min_element(stored.begin(), stored.end());
    if (*best_it == 1) {
      // Rank 1 is in the store: it is evicted iff every pairwise comparison
      // against the other stored documents comes out flipped.
      bool all_lose = true;
      for (const std::size_t other : stored) {
        if (other == 1) continue;
        const double flip = c / static_cast<double>(other - 1);
        if (rng.next_double() >= flip) {
          all_lose = false;
          break;
        }
      }
      if (all_lose) return true;  // the best candidate was discarded
    }
    // Otherwise the (essentially correct) comparisons evict the true worst.
    stored.erase(std::max_element(stored.begin(), stored.end()));
  }
  return false;
}

double bound(std::size_t n, std::size_t k) {
  double fact = 1;
  for (std::size_t i = 1; i < k; ++i) fact *= static_cast<double>(i);
  return static_cast<double>(n - k) /
         (std::pow(std::log(static_cast<double>(n)), static_cast<double>(k - 1)) * fact);
}

}  // namespace

int main() {
  using cbde::bench::print_rule;
  using cbde::bench::print_title;

  print_title(
      "SIV analysis -- P(discard the best base-file candidate): Monte Carlo of the\n"
      "noisy-comparison model vs the paper's bound (N-K)/((ln N)^(K-1) (K-1)!)");

  std::printf("%6s %4s %12s %14s %12s\n", "N", "K", "trials", "measured", "bound");
  print_rule(56);

  util::Rng rng(20260707);
  bool all_within = true;
  struct Case {
    std::size_t n, k, trials;
  };
  constexpr Case kCases[] = {{50, 3, 40000},  {100, 3, 40000}, {100, 4, 40000},
                             {200, 4, 20000}, {200, 5, 20000}, {1000, 6, 4000}};
  for (const auto& [n, k, trials] : kCases) {
    const double c = 1.0 / harmonic(n - 1);
    std::size_t errors = 0;
    for (std::size_t t = 0; t < trials; ++t) errors += simulate_once(n, k, c, rng);
    const double measured = static_cast<double>(errors) / static_cast<double>(trials);
    const double b = bound(n, k);
    std::printf("%6zu %4zu %12zu %14.6f %12.4g %s\n", n, k, trials, measured, b,
                measured <= b ? "" : "  <-- EXCEEDS BOUND");
    all_within &= measured <= b;
  }

  std::printf("\npaper's example: R=1e5, p=1e-2 => N=1000, K=10:\n");
  std::printf("  paper bound:    8e-11\n");
  std::printf("  our bound eval: %.3g  (unmeasurably small; simulation of N=1000,\n"
              "  K=6 above already shows the measured rate collapsing toward 0)\n",
              bound(1000, 10));
  std::printf("\nShape check %s: every measured error rate is below the analytic bound\n"
              "and decreases sharply in K, as §IV claims.\n",
              all_within ? "OK" : "FAILED");
  return all_within ? 0 : 1;
}
