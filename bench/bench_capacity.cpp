// §VI-C deployment — server capacity and concurrency with the delta-server
// integrated next to the web-server.
//
// Paper measurements (PIII-866, Apache 1.3.17):
//   * plain web-server:        175-180 req/s, max 255 concurrent connections;
//   * delta- + web-server:     ~130 req/s (delta generation is CPU-heavy),
//                              but sustains 500+ concurrent connections
//                              thanks to the front-end offloading effect;
//   * delta generation:        6-8 ms for a 50-60 KB base-file,
//                              ~8 KB raw / ~3 KB compressed deltas.
// We first measure our actual delta-generation cost (wall clock) on the
// same workload shape, then run the closed-loop capacity harness with the
// paper's CPU magnitudes to reproduce the throughput and concurrency rows.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "compress/compressor.hpp"
#include "delta/delta.hpp"
#include "server/load.hpp"
#include "trace/document.hpp"

namespace {

using namespace cbde;

/// Measure real wall-clock delta generation cost on a 50-60 KB base.
void measure_delta_cost() {
  trace::TemplateConfig tconfig;
  tconfig.skeleton_bytes = 48000;
  tconfig.doc_unique_bytes = 5000;
  const trace::DocumentTemplate tmpl(99, tconfig);
  const auto base = tmpl.generate(0, 1, 0);

  double encode_us = 0;
  double compress_us = 0;
  std::size_t delta_bytes = 0;
  std::size_t wire_bytes = 0;
  const int kIters = 50;
  for (int i = 0; i < kIters; ++i) {
    const auto doc = tmpl.generate(static_cast<std::uint64_t>(i % 7), 2, i * 1000);
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = delta::encode(util::as_view(base), util::as_view(doc));
    const auto t1 = std::chrono::steady_clock::now();
    const auto wire = compress::compress(util::as_view(result.delta));
    const auto t2 = std::chrono::steady_clock::now();
    encode_us += std::chrono::duration<double, std::micro>(t1 - t0).count();
    compress_us += std::chrono::duration<double, std::micro>(t2 - t1).count();
    delta_bytes += result.delta.size();
    wire_bytes += wire.size();
  }
  std::printf("delta generation, %.0f KB base-file (N=%d):\n",
              static_cast<double>(base.size()) / 1024.0, kIters);
  std::printf("  paper (PIII-866):  6-8 ms/delta, ~8 KB raw, ~3 KB compressed\n");
  std::printf("  ours (this host):  %.2f ms encode + %.2f ms compress, %.1f KB raw, "
              "%.1f KB compressed\n",
              encode_us / kIters / 1000.0, compress_us / kIters / 1000.0,
              static_cast<double>(delta_bytes) / kIters / 1024.0,
              static_cast<double>(wire_bytes) / kIters / 1024.0);
  std::printf("  (absolute times scale with the host; the capacity rows below use the\n"
              "   paper's CPU magnitudes so the throughput shape is comparable)\n");
}

void capacity_row(const char* label, const server::LoadConfig& config,
                  const char* paper_note) {
  const auto result = server::run_closed_loop(config);
  std::printf("  %-28s %8.0f req/s %10zu peak conns %9llu refused   %s\n", label,
              result.requests_per_sec, result.peak_connections,
              static_cast<unsigned long long>(result.refused), paper_note);
}

}  // namespace

int main() {
  using cbde::bench::print_title;
  using cbde::bench::print_rule;

  print_title(
      "SVI-C capacity -- plain web-server vs delta-server + web-server\n"
      "(paper: 175-180 req/s @255 conns vs ~130 req/s @500+ conns)");

  measure_delta_cost();

  // CPU costs on the paper's reference host: a plain dynamic request costs
  // ~5.6 ms (=> 178 req/s); the delta pipeline adds ~2 ms of amortized delta
  // generation (=> ~130 req/s).
  constexpr double kPlainCpuUs = 5600;
  constexpr double kDeltaCpuUs = 7700;

  std::printf("\nfast (LAN) clients -- throughput is CPU-bound:\n");
  {
    server::LoadConfig plain;
    plain.mode = server::PipelineMode::kPlain;
    plain.num_clients = 100;
    plain.cpu_us_per_request = kPlainCpuUs;
    plain.response_bytes = 30 * 1024;
    plain.client_link = netsim::LinkProfile::broadband();
    capacity_row("plain web-server", plain, "(paper: 175-180 req/s)");

    server::LoadConfig delta = plain;
    delta.mode = server::PipelineMode::kDelta;
    delta.cpu_us_per_request = kDeltaCpuUs;
    delta.response_bytes = 3 * 1024;  // compressed delta
    capacity_row("delta + web-server", delta, "(paper: ~130 req/s)");
  }

  std::printf("\nslow (modem) clients, 600 concurrent -- connection slots bind:\n");
  {
    server::LoadConfig plain;
    plain.mode = server::PipelineMode::kPlain;
    plain.num_clients = 600;
    plain.cpu_us_per_request = kPlainCpuUs;
    plain.response_bytes = 30 * 1024;
    plain.client_link = netsim::LinkProfile::modem();
    capacity_row("plain web-server", plain, "(paper: capped at 255 conns)");

    server::LoadConfig delta = plain;
    delta.mode = server::PipelineMode::kDelta;
    delta.cpu_us_per_request = kDeltaCpuUs;
    delta.response_bytes = 3 * 1024;
    capacity_row("delta + web-server", delta, "(paper: sustains 500+ conns)");
  }

  print_rule();
  std::printf(
      "Shape check: with fast clients the delta system trades ~27%% throughput for\n"
      "CPU (178 -> 130 req/s); with slow clients the plain server saturates its 255\n"
      "slots and refuses connections while the delta front-end holds 500+ and\n"
      "delivers higher goodput (small responses drain modem links 10x faster).\n");
  return 0;
}
