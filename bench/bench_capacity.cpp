// §VI-C deployment — server capacity and concurrency with the delta-server
// integrated next to the web-server.
//
// Paper measurements (PIII-866, Apache 1.3.17):
//   * plain web-server:        175-180 req/s, max 255 concurrent connections;
//   * delta- + web-server:     ~130 req/s (delta generation is CPU-heavy),
//                              but sustains 500+ concurrent connections
//                              thanks to the front-end offloading effect;
//   * delta generation:        6-8 ms for a 50-60 KB base-file,
//                              ~8 KB raw / ~3 KB compressed deltas.
// We first measure our actual delta-generation cost (wall clock) on the
// same workload shape, then run the closed-loop capacity harness with the
// paper's CPU magnitudes to reproduce the throughput and concurrency rows.
//
// --shards replay mode (the sharded-DeltaServer scaling curve): replay one
// identical pre-generated request stream through a real DeltaServer at each
// shard count, measure wall-clock req/s, assert the Table II byte totals
// are bit-exact across shard counts, and write BENCH_capacity.json.
//
// Flags:
//   --shards LIST   comma-separated shard counts (e.g. 1,2,4) — enables
//                   replay mode; without this flag the legacy closed-loop
//                   harness above runs unchanged
//   --requests N    requests per shard-count run (default 512, smoke 96)
//   --out PATH      where to write the JSON (default: BENCH_capacity.json)
//   --smoke         tiny corpus (CI sanity run)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "compress/compressor.hpp"
#include "core/delta_server.hpp"
#include "core/delta_worker_pool.hpp"
#include "delta/delta.hpp"
#include "obs/span_profile.hpp"
#include "obs/time_series.hpp"
#include "server/load.hpp"
#include "trace/document.hpp"
#include "trace/site.hpp"

namespace {

using namespace cbde;

/// Measure real wall-clock delta generation cost on a 50-60 KB base.
void measure_delta_cost() {
  trace::TemplateConfig tconfig;
  tconfig.skeleton_bytes = 48000;
  tconfig.doc_unique_bytes = 5000;
  const trace::DocumentTemplate tmpl(99, tconfig);
  const auto base = tmpl.generate(0, 1, 0);

  double encode_us = 0;
  double compress_us = 0;
  std::size_t delta_bytes = 0;
  std::size_t wire_bytes = 0;
  const int kIters = 50;
  for (int i = 0; i < kIters; ++i) {
    const auto doc = tmpl.generate(static_cast<std::uint64_t>(i % 7), 2, i * 1000);
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = delta::encode(util::as_view(base), util::as_view(doc));
    const auto t1 = std::chrono::steady_clock::now();
    const auto wire = compress::compress(util::as_view(result.delta));
    const auto t2 = std::chrono::steady_clock::now();
    encode_us += std::chrono::duration<double, std::micro>(t1 - t0).count();
    compress_us += std::chrono::duration<double, std::micro>(t2 - t1).count();
    delta_bytes += result.delta.size();
    wire_bytes += wire.size();
  }
  std::printf("delta generation, %.0f KB base-file (N=%d):\n",
              static_cast<double>(base.size()) / 1024.0, kIters);
  std::printf("  paper (PIII-866):  6-8 ms/delta, ~8 KB raw, ~3 KB compressed\n");
  std::printf("  ours (this host):  %.2f ms encode + %.2f ms compress, %.1f KB raw, "
              "%.1f KB compressed\n",
              encode_us / kIters / 1000.0, compress_us / kIters / 1000.0,
              static_cast<double>(delta_bytes) / kIters / 1024.0,
              static_cast<double>(wire_bytes) / kIters / 1024.0);
  std::printf("  (absolute times scale with the host; the capacity rows below use the\n"
              "   paper's CPU magnitudes so the throughput shape is comparable)\n");
}

void capacity_row(const char* label, const server::LoadConfig& config,
                  const char* paper_note) {
  const auto result = server::run_closed_loop(config);
  std::printf("  %-28s %8.0f req/s %10zu peak conns %9llu refused   %s\n", label,
              result.requests_per_sec, result.peak_connections,
              static_cast<unsigned long long>(result.refused), paper_note);
}

// ---------------------------------------------------------------------------
// --shards replay mode: the SVI-C capacity question asked of our own server.
// ---------------------------------------------------------------------------

struct ShardRunResult {
  std::size_t shards = 0;
  std::size_t workers = 0;
  double total_ns = 0;
  double requests_per_sec = 0;
  core::PipelineMetrics metrics;
  std::size_t storage_bytes = 0;
  std::size_t num_classes = 0;
  /// One time-series window per replay chunk (per-shard rates, serve
  /// quantiles, imbalance, lock-wait share) — the telemetry the CI
  /// perf-regression gate bands.
  std::vector<obs::TimeSeriesWindow> windows;
  /// Flame profile folded from the sampled request traces of this run:
  /// where serve time goes at this shard count.
  obs::SpanProfile profile;
};

/// Replay `requests` identical requests against a fresh DeltaServer built
/// with `shards` shards. The request stream is regenerated deterministically
/// per call (same seeds, same order), so every shard count sees the same
/// bytes; document generation happens before the clock starts.
ShardRunResult run_sharded_replay(const trace::SiteModel& site, std::size_t shards,
                                  std::size_t requests) {
  core::DeltaServerConfig config;
  config.shards = shards;
  config.anonymize = false;  // steady state: every request is grouped+encoded
  config.selector.sample_prob = 0.05;
  config.rebase_timeout = 1000000 * util::kSecond;
  config.basic_rebase_after = 1 << 20;
  // Telemetry for the scaling curve: trace every 16th request into the
  // flame profile and time mutex acquisition, so the windows below carry a
  // real lock_wait_share. Identical settings at every shard count keep the
  // req/s numbers comparable across the curve (the byte ledger is
  // obs-independent, so parity is unaffected either way).
  config.obs.sample_rate = 1.0 / 16.0;
  config.obs.lock_profile = true;

  http::RuleBook rules;
  rules.add_rule(site.config().host, site.partition_rule());
  core::DeltaServer server(config, std::move(rules));

  // Warmup: create one class per category and publish its base.
  const std::size_t cats = site.num_categories();
  for (std::size_t c = 0; c < cats; ++c) {
    const trace::DocRef ref{c, 0};
    const util::Bytes doc = site.generate(ref, 1, 0);
    server.serve(1, site.url_for(ref), util::as_view(doc), 0);
  }

  struct Req {
    std::uint64_t user;
    http::Url url;
    util::Bytes doc;
    util::SimTime now;
  };
  std::vector<Req> stream;
  stream.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    const trace::DocRef ref{i % cats, 1 + i % (site.config().docs_per_category - 1)};
    const std::uint64_t user = 2 + i % 17;
    const util::SimTime now = static_cast<util::SimTime>(i) * util::kSecond;
    stream.push_back(Req{user, site.url_for(ref), site.generate(ref, user, now), now});
  }

  // Replay in kWindows chunks: submit a chunk, drain it, close a
  // time-series window. Window boundaries are request-count based, not
  // wall-clock based, so every window holds real per-shard serve counts —
  // the >= 8 populated windows the telemetry gate asserts hold even on a
  // fast smoke run.
  constexpr std::size_t kWindows = 10;
  ShardRunResult result;
  result.shards = shards;
  std::vector<std::future<core::ServedResponse>> futures;
  futures.reserve(requests / kWindows + 1);
  const auto t0 = std::chrono::steady_clock::now();
  {
    // workers=0: recommended sizing — max(shards, cores) — so encode
    // parallelism composes with shard parallelism.
    core::DeltaWorkerPool pool(server, 0);
    result.workers = pool.workers();
    obs::TimeSeriesConfig ts_config;
    ts_config.ring_capacity = kWindows;  // manual ticks, no JSONL sink here
    obs::TimeSeriesRecorder recorder(server.obs().registry(), ts_config);
    std::size_t next = 0;
    for (std::size_t w = 1; w <= kWindows; ++w) {
      const std::size_t chunk_end = requests * w / kWindows;
      futures.clear();
      for (; next < chunk_end; ++next) {
        Req& req = stream[next];
        futures.push_back(
            pool.submit(req.user, std::move(req.url), std::move(req.doc), req.now));
      }
      for (auto& f : futures) {
        const core::ServedResponse resp = f.get();
        if (resp.trace != nullptr) result.profile.add(*resp.trace);
      }
      recorder.tick();
    }
    pool.shutdown();
    result.windows = recorder.windows();
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.total_ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
  result.requests_per_sec = static_cast<double>(requests) / (result.total_ns / 1e9);
  result.metrics = server.metrics();
  result.storage_bytes = server.storage_bytes();
  result.num_classes = server.num_classes();
  return result;
}

/// Bit-exact Table II parity against the reference run; any divergence is a
/// determinism bug in the sharding layer, so the bench itself fails.
bool check_byte_parity(const ShardRunResult& reference, const ShardRunResult& run) {
  const auto& a = reference.metrics;
  const auto& b = run.metrics;
  bool ok = true;
  const auto expect_eq = [&](const char* name, std::uint64_t lhs, std::uint64_t rhs) {
    if (lhs != rhs) {
      std::fprintf(stderr,
                   "byte-parity violation: %s differs (shards=%zu: %llu, shards=%zu: "
                   "%llu)\n",
                   name, reference.shards, static_cast<unsigned long long>(lhs),
                   run.shards, static_cast<unsigned long long>(rhs));
      ok = false;
    }
  };
  expect_eq("requests", a.requests, b.requests);
  expect_eq("direct_responses", a.direct_responses, b.direct_responses);
  expect_eq("delta_responses", a.delta_responses, b.delta_responses);
  expect_eq("direct_bytes", a.direct_bytes, b.direct_bytes);
  expect_eq("wire_bytes", a.wire_bytes, b.wire_bytes);
  expect_eq("base_wire_bytes", a.base_wire_bytes, b.base_wire_bytes);
  expect_eq("group_rebases", a.group_rebases, b.group_rebases);
  expect_eq("basic_rebases", a.basic_rebases, b.basic_rebases);
  expect_eq("storage_bytes", reference.storage_bytes, run.storage_bytes);
  expect_eq("num_classes", reference.num_classes, run.num_classes);
  return ok;
}

int run_shards_mode(const std::vector<std::size_t>& shard_counts,
                    std::size_t requests, bool smoke, const std::string& out_path) {
  using cbde::bench::print_title;
  using cbde::bench::print_rule;

  print_title(
      "SVI-C capacity -- sharded DeltaServer scaling curve\n"
      "(identical replay per shard count; Table II bytes must be bit-exact)");

  trace::SiteConfig sconfig;
  sconfig.categories = {"c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7"};
  sconfig.docs_per_category = 16;
  sconfig.doc_template.skeleton_bytes = smoke ? 7000 : 48000;
  sconfig.doc_template.doc_unique_bytes = smoke ? 600 : 4000;
  const trace::SiteModel site(sconfig);

  const std::size_t cores = std::thread::hardware_concurrency();
  std::printf("requests/run: %zu   hardware_concurrency: %zu\n", requests, cores);
  if (cores <= 1) {
    std::printf("NOTICE: 1-core host -- this curve measures sharding OVERHEAD, "
                "not parallel speedup (byte parity is still asserted)\n");
  }

  bench::JsonWriter json;
  json.open("config");
  json.field("requests", requests);
  json.field("smoke", static_cast<std::size_t>(smoke ? 1 : 0));
  json.field("hardware_concurrency", cores);
  json.close();

  std::vector<ShardRunResult> runs;
  for (const std::size_t shards : shard_counts) {
    runs.push_back(run_sharded_replay(site, shards, requests));
    const ShardRunResult& r = runs.back();
    std::printf("  shards=%-2zu workers=%-2zu  %10.0f req/s   wire %llu B   "
                "deltas %llu/%llu\n",
                r.shards, r.workers, r.requests_per_sec,
                static_cast<unsigned long long>(r.metrics.wire_bytes),
                static_cast<unsigned long long>(r.metrics.delta_responses),
                static_cast<unsigned long long>(r.metrics.requests));
  }

  bool parity = true;
  for (const ShardRunResult& r : runs) parity = check_byte_parity(runs.front(), r) && parity;

  const ShardRunResult* baseline = nullptr;
  for (const ShardRunResult& r : runs)
    if (r.shards == 1) baseline = &r;

  for (const ShardRunResult& r : runs) {
    json.open("shards_" + std::to_string(r.shards));
    json.field("shards", r.shards);
    json.field("workers", r.workers);
    json.field("requests_per_sec", r.requests_per_sec);
    json.field("ns_per_request", r.total_ns / static_cast<double>(requests));
    json.field("wire_bytes", static_cast<std::size_t>(r.metrics.wire_bytes));
    json.field("base_wire_bytes", static_cast<std::size_t>(r.metrics.base_wire_bytes));
    json.field("direct_bytes", static_cast<std::size_t>(r.metrics.direct_bytes));
    json.field("delta_responses", static_cast<std::size_t>(r.metrics.delta_responses));
    json.field("direct_responses", static_cast<std::size_t>(r.metrics.direct_responses));
    json.field("storage_bytes", r.storage_bytes);
    json.field("num_classes", r.num_classes);
    if (baseline != nullptr && baseline != &r && baseline->requests_per_sec > 0) {
      json.field("speedup_vs_shards_1", r.requests_per_sec / baseline->requests_per_sec);
    }
    json.field_raw("time_series", bench::time_series_summary_json(r.windows));
    json.close();
  }
  json.field("byte_parity", static_cast<std::size_t>(parity ? 1 : 0));

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json.finish();
  std::printf("wrote %s\n", out_path.c_str());

  // Telemetry sidecars next to the JSON: the full per-window records as
  // JSONL (one line per window, every run concatenated) and one speedscope
  // document holding a flame profile per shard count.
  std::string stem = out_path;
  if (stem.size() > 5 && stem.compare(stem.size() - 5, 5, ".json") == 0) {
    stem.resize(stem.size() - 5);
  }
  const std::string ts_path = stem + "_timeseries.jsonl";
  const std::string profile_path = stem + "_profile.json";
  {
    std::ofstream ts(ts_path);
    for (const ShardRunResult& r : runs) {
      for (const obs::TimeSeriesWindow& w : r.windows) {
        ts << obs::TimeSeriesRecorder::to_jsonl(w);
      }
    }
  }
  {
    std::vector<std::pair<std::string, const obs::SpanProfile*>> profiles;
    profiles.reserve(runs.size());
    for (const ShardRunResult& r : runs) {
      profiles.emplace_back("shards_" + std::to_string(r.shards), &r.profile);
    }
    std::ofstream prof(profile_path);
    prof << obs::SpanProfile::speedscope_document(profiles) << "\n";
  }
  std::printf("wrote %s and %s\n", ts_path.c_str(), profile_path.c_str());

  // Where serve time goes per shard count (self time folded from the
  // sampled traces; open https://speedscope.app on the profile for the
  // interactive view).
  for (const ShardRunResult& r : runs) {
    std::printf("  serve-time profile, shards=%zu (%zu sampled traces, %llu us):\n",
                r.shards, r.profile.traces(),
                static_cast<unsigned long long>(r.profile.total_us()));
    const std::string collapsed = r.profile.collapsed();
    std::size_t begin = 0;
    while (begin < collapsed.size()) {
      std::size_t end = collapsed.find('\n', begin);
      if (end == std::string::npos) end = collapsed.size();
      std::printf("    %s\n", collapsed.substr(begin, end - begin).c_str());
      begin = end + 1;
    }
  }

  print_rule();
  if (!parity) {
    std::fprintf(stderr, "FAIL: Table II byte accounting diverged across shard "
                         "counts (see violations above)\n");
    return 1;
  }
  std::printf("byte parity: OK -- Table II accounting is bit-exact across "
              "shard counts {");
  for (std::size_t i = 0; i < shard_counts.size(); ++i)
    std::printf("%s%zu", i ? "," : "", shard_counts[i]);
  std::printf("}\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using cbde::bench::print_title;
  using cbde::bench::print_rule;

  bool smoke = false;
  bool shards_mode = false;
  std::vector<std::size_t> shard_counts;
  std::size_t requests = 0;
  std::string out_path = "BENCH_capacity.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards_mode = true;
      const std::string list = argv[++i];
      std::size_t pos = 0;
      while (pos < list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string item =
            list.substr(pos, comma == std::string::npos ? comma : comma - pos);
        const unsigned long parsed = std::strtoul(item.c_str(), nullptr, 10);
        if (parsed == 0) {
          std::fprintf(stderr, "bad --shards entry: '%s'\n", item.c_str());
          return 2;
        }
        shard_counts.push_back(parsed);
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--shards LIST] [--requests N] [--out PATH] [--smoke]\n",
                   argv[0]);
      return 2;
    }
  }

  if (shards_mode) {
    if (shard_counts.empty()) shard_counts = {1, 2, 4};
    if (requests == 0) requests = smoke ? 96 : 512;
    return run_shards_mode(shard_counts, requests, smoke, out_path);
  }

  print_title(
      "SVI-C capacity -- plain web-server vs delta-server + web-server\n"
      "(paper: 175-180 req/s @255 conns vs ~130 req/s @500+ conns)");

  measure_delta_cost();

  // CPU costs on the paper's reference host: a plain dynamic request costs
  // ~5.6 ms (=> 178 req/s); the delta pipeline adds ~2 ms of amortized delta
  // generation (=> ~130 req/s).
  constexpr double kPlainCpuUs = 5600;
  constexpr double kDeltaCpuUs = 7700;

  std::printf("\nfast (LAN) clients -- throughput is CPU-bound:\n");
  {
    server::LoadConfig plain;
    plain.mode = server::PipelineMode::kPlain;
    plain.num_clients = 100;
    plain.cpu_us_per_request = kPlainCpuUs;
    plain.response_bytes = 30 * 1024;
    plain.client_link = netsim::LinkProfile::broadband();
    capacity_row("plain web-server", plain, "(paper: 175-180 req/s)");

    server::LoadConfig delta = plain;
    delta.mode = server::PipelineMode::kDelta;
    delta.cpu_us_per_request = kDeltaCpuUs;
    delta.response_bytes = 3 * 1024;  // compressed delta
    capacity_row("delta + web-server", delta, "(paper: ~130 req/s)");
  }

  std::printf("\nslow (modem) clients, 600 concurrent -- connection slots bind:\n");
  {
    server::LoadConfig plain;
    plain.mode = server::PipelineMode::kPlain;
    plain.num_clients = 600;
    plain.cpu_us_per_request = kPlainCpuUs;
    plain.response_bytes = 30 * 1024;
    plain.client_link = netsim::LinkProfile::modem();
    capacity_row("plain web-server", plain, "(paper: capped at 255 conns)");

    server::LoadConfig delta = plain;
    delta.mode = server::PipelineMode::kDelta;
    delta.cpu_us_per_request = kDeltaCpuUs;
    delta.response_bytes = 3 * 1024;
    capacity_row("delta + web-server", delta, "(paper: sustains 500+ conns)");
  }

  print_rule();
  std::printf(
      "Shape check: with fast clients the delta system trades ~27%% throughput for\n"
      "CPU (178 -> 130 req/s); with slow clients the plain server saturates its 255\n"
      "slots and refuses connections while the delta front-end holds 500+ and\n"
      "delivers higher goodput (small responses drain modem links 10x faster).\n");
  return 0;
}
