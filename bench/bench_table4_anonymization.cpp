// Table IV — base-file and delta sizes for various anonymization levels.
//
// The paper anonymizes an ~84 KB base-file at three (M, N) settings and
// reports the base size before/after and the average delta size (over a
// large pool of documents) with and without anonymization:
//   M  N   base(plain) base(anon)  delta(plain) delta(anon)
//   2  5      84213       73434        5224        6520
//   4 12      84213       72714        5224        6097
//   4  8      84213       71090        5224        6505
//
// We rebuild the setting with a personalized-portal template sized to the
// same base (~84 KB) and delta (~5 KB) magnitudes, anonymize against N
// distinct users' documents, and measure the same four columns.
#include <cstdio>

#include "bench_common.hpp"
#include "core/anonymizer.hpp"
#include "trace/document.hpp"
#include "util/stats.hpp"

namespace {

using namespace cbde;
using util::Bytes;

trace::TemplateConfig portal_template() {
  trace::TemplateConfig config;
  config.skeleton_bytes = 70000;
  config.doc_unique_bytes = 1400;
  config.volatile_bytes = 2000;
  config.personal_bytes = 1200;  // a strongly personalized page (the §V case)
  config.cohort_bytes = 3600;   // regional/tier/interest content shared by cohorts
  config.num_cohorts = 8;
  config.private_bytes = 128;
  config.num_sections = 24;
  return config;
}

}  // namespace

int main() {
  using cbde::bench::print_rule;
  using cbde::bench::print_title;

  print_title(
      "Table IV -- base-file and delta sizes (bytes) for various anonymization\n"
      "levels (paper: anonymization costs only a small delta increase)");

  const trace::DocumentTemplate tmpl(31337, portal_template());
  const std::uint64_t owner = 1;
  const Bytes base = tmpl.generate(0, owner, 0);

  // Document pool: mostly the same logical page viewed by many distinct
  // users plus a few sibling documents — the personalized my.yahoo case.
  std::vector<Bytes> pool;
  for (std::uint64_t user = 100; user < 160; ++user) {
    const std::uint64_t doc = user % 5 == 0 ? 1 + user % 3 : 0;
    pool.push_back(tmpl.generate(doc, user,
                                 static_cast<util::SimTime>(user) * util::kSecond * 3600));
  }

  const auto plain_delta_avg = [&] {
    util::OnlineStats stats;
    for (const Bytes& doc : pool) {
      stats.add(static_cast<double>(
          delta::encode(util::as_view(base), util::as_view(doc)).delta.size()));
    }
    return stats.mean();
  }();

  struct Row {
    std::size_t m, n;
    double paper_base_anon, paper_delta_anon;
  };
  const Row rows[] = {{2, 5, 73434, 6520}, {4, 12, 72714, 6097}, {4, 8, 71090, 6505}};

  std::printf("%2s %3s | %12s %12s | %13s %13s | %12s %12s\n", "M", "N", "base(plain)",
              "base(anon)", "delta(plain)", "delta(anon)", "paper b(anon)",
              "paper d(anon)");
  print_rule(96);

  bool shape_ok = true;
  for (const Row& row : rows) {
    // Anonymize against N documents from N distinct users (none the owner).
    std::vector<Bytes> sample(pool.begin(),
                              pool.begin() + static_cast<std::ptrdiff_t>(row.n));
    const Bytes anon = core::anonymize_against(util::as_view(base), sample, row.m);

    util::OnlineStats anon_delta;
    for (const Bytes& doc : pool) {
      anon_delta.add(static_cast<double>(
          delta::encode(util::as_view(anon), util::as_view(doc)).delta.size()));
    }

    std::printf("%2zu %3zu | %12zu %12zu | %13.0f %13.0f | %12.0f %12.0f\n", row.m,
                row.n, base.size(), anon.size(), plain_delta_avg, anon_delta.mean(),
                row.paper_base_anon, row.paper_delta_anon);

    // Paper shape: anon base loses ~13-16% of the base; deltas grow but by
    // well under 2x.
    shape_ok &= anon.size() < base.size();
    shape_ok &= anon.size() > base.size() / 2;
    shape_ok &= anon_delta.mean() >= plain_delta_avg;
    shape_ok &= anon_delta.mean() < plain_delta_avg * 2.0;
    // Privacy: the owner's private payload must be gone.
    const std::string text = util::to_string(util::as_view(anon));
    if (text.find(tmpl.private_payload(owner)) != std::string::npos) {
      std::printf("   WARNING: private payload leaked into anonymized base!\n");
      shape_ok = false;
    }
  }

  std::printf(
      "\nShape check %s: base shrinks moderately, deltas grow by a small amount,\n"
      "owner's private bytes removed at every (M, N) level.\n",
      shape_ok ? "OK" : "FAILED");
  return shape_ok ? 0 : 1;
}
