// §VII future work — "We intend to perform more simulations using real data
// from various web-sites, in order to understand better the robustness and
// performance of the class-related operations."
//
// This bench is that study, run on synthetic sites engineered to be hostile
// to the class-related operations in different ways:
//   friendly     — the well-structured catalog every other bench uses;
//   ad-hoc URLs  — no partition rule registered, heuristic hints only
//                  (the §III "ad-hoc site" caveat);
//   fast drift   — volatile content churns faster than users revisit
//                  (temporal correlation collapses);
//   tiny docs    — 3 KB documents where framing overhead bites;
//   hyper-perso  — per-user content dominates the page (the my.yahoo
//                  stress case for class-based operation);
//   many splits  — 16 categories sharing two URL hints (hint narrowing
//                  misleads the search).
// For each: savings, classes formed, grouping tries, rebases, and verified
// reconstruction — robustness means degrading gracefully, never breaking.
#include <cstdio>

#include "bench_common.hpp"
#include "core/simulation.hpp"

namespace {

using namespace cbde;

struct Scenario {
  const char* name;
  trace::SiteConfig site;
  bool register_rule = true;
  double min_savings;  // graceful-degradation floor
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  {
    Scenario s{"friendly", {}, true, 0.80};
    s.site.host = "www.friendly.example";
    s.site.categories = {"a", "b", "c"};
    s.site.docs_per_category = 40;
    out.push_back(s);
  }
  {
    Scenario s{"ad-hoc URLs", {}, false, 0.75};
    s.site.host = "www.adhoc.example";
    s.site.style = trace::UrlStyle::kPathOnly;
    s.site.categories = {"x1", "x2", "x3", "x4"};
    s.site.docs_per_category = 30;
    out.push_back(s);
  }
  {
    Scenario s{"fast drift", {}, true, 0.55};
    s.site.host = "www.drift.example";
    s.site.categories = {"live"};
    s.site.docs_per_category = 40;
    s.site.doc_template.volatile_bytes = 6000;  // heavy churn
    s.site.doc_template.volatile_period = 2 * util::kSecond;
    out.push_back(s);
  }
  {
    Scenario s{"tiny docs", {}, true, 0.40};
    s.site.host = "www.tiny.example";
    s.site.categories = {"t"};
    s.site.docs_per_category = 60;
    auto& tc = s.site.doc_template;
    tc.skeleton_bytes = 2200;
    tc.doc_unique_bytes = 400;
    tc.volatile_bytes = 150;
    tc.personal_bytes = 100;
    tc.cohort_bytes = 0;
    tc.private_bytes = 32;
    tc.num_sections = 4;
    out.push_back(s);
  }
  {
    Scenario s{"hyper-personalized", {}, true, 0.45};
    s.site.host = "www.perso.example";
    s.site.categories = {"portal"};
    s.site.docs_per_category = 10;
    auto& tc = s.site.doc_template;
    tc.personal_bytes = 9000;  // per-user content dominates
    tc.cohort_bytes = 3000;
    tc.private_bytes = 256;
    out.push_back(s);
  }
  {
    Scenario s{"many splits", {}, false, 0.70};
    s.site.host = "www.splits.example";
    s.site.style = trace::UrlStyle::kQueryParam;
    s.site.categories = {"c01", "c02", "c03", "c04", "c05", "c06", "c07", "c08",
                         "c09", "c10", "c11", "c12", "c13", "c14", "c15", "c16"};
    s.site.docs_per_category = 10;
    out.push_back(s);
  }
  return out;
}

}  // namespace

int main() {
  using cbde::bench::print_rule;
  using cbde::bench::print_title;

  print_title(
      "SVII robustness -- class-related operations under hostile workloads\n"
      "(the paper's stated future work: robustness of grouping / selection /\n"
      "anonymization beyond well-behaved sites)");

  std::printf("%-20s %9s %8s %8s %9s %8s %9s\n", "scenario", "savings", "classes",
              "tries<=2", "rebases", "direct%", "verified");
  print_rule(80);

  bool all_ok = true;
  for (const auto& scenario : scenarios()) {
    const trace::SiteModel site(scenario.site);
    server::OriginServer origin;
    origin.add_site(site);
    http::RuleBook rules;
    if (scenario.register_rule) {
      rules.add_rule(scenario.site.host, site.partition_rule());
    }
    core::PipelineConfig config;
    config.measure_latency = false;
    trace::WorkloadConfig wconfig;
    wconfig.num_requests = 2000;
    wconfig.num_users = 100;
    wconfig.mean_interarrival_us = 500 * util::kMillisecond;  // slow enough to drift
    core::Pipeline pipeline(origin, config, rules);
    pipeline.process_all(trace::WorkloadGenerator(site, wconfig).generate());
    const auto report = pipeline.report();
    const auto gstats = pipeline.delta_server().grouping_stats();

    std::uint64_t within_two = 0;
    for (std::size_t t = 0; t <= 2; ++t) within_two += gstats.tries.bucket(t);
    const double savings = report.origin_savings();
    const bool ok = report.verify_failures == 0 && savings >= scenario.min_savings;
    all_ok &= ok;
    std::printf("%-20s %8.1f%% %8zu %7.0f%% %9llu %7.1f%% %8s %s\n", scenario.name,
                savings * 100.0, report.num_classes,
                100.0 * static_cast<double>(within_two) /
                    static_cast<double>(std::max<std::uint64_t>(gstats.requests, 1)),
                static_cast<unsigned long long>(report.server.group_rebases +
                                                report.server.basic_rebases),
                100.0 * static_cast<double>(report.server.direct_responses) /
                    static_cast<double>(std::max<std::uint64_t>(report.server.requests, 1)),
                report.verify_failures == 0 ? "100%" : "FAIL",
                ok ? "" : "  <-- BELOW FLOOR");
  }

  std::printf(
      "\nShape check %s: savings degrade smoothly with workload hostility, every\n"
      "reconstruction stays exact, and grouping never needs more than a couple of\n"
      "tries even without administrator partition rules.\n",
      all_ok ? "OK" : "FAILED");
  return all_ok ? 0 : 1;
}
