// §I motivation — proxy-cache effectiveness with and without CBDE.
//
// The introduction cites Wolman et al. [18]: proxy hit rates stall "around
// 40%" because dynamic documents are uncachable, but "if proxy-caches were
// equipped with mechanisms that exploit redundancy from all documents,
// static and dynamic, hit rates could have been up to 80%". This bench
// builds a mixed static/dynamic traffic population and measures the byte
// traffic a proxy saves (a) with stock HTTP caching only and (b) with the
// delta-server rendering the dynamic share effectively cachable.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "compress/compressor.hpp"
#include "core/simulation.hpp"
#include "proxy/cache.hpp"

namespace {

using namespace cbde;
using util::Bytes;

}  // namespace

int main() {
  using cbde::bench::print_rule;
  using cbde::bench::print_title;
  using cbde::bench::to_kb;

  print_title(
      "SI motivation -- proxy effectiveness on mixed static/dynamic traffic\n"
      "(paper cites: ~40% hit rates today, up to ~80% if dynamic redundancy\n"
      "were exploitable)");

  // Traffic mix: half the requests go to static objects (images, CSS,
  // archived pages), half to dynamic documents.
  trace::SiteConfig sconfig;
  sconfig.host = "www.mixed.example";
  sconfig.categories = {"products", "news"};
  sconfig.docs_per_category = 60;
  const trace::SiteModel site(sconfig);
  server::OriginServer origin;
  origin.add_site(site);
  http::RuleBook rules;
  rules.add_rule(sconfig.host, site.partition_rule());

  trace::WorkloadConfig wconfig;
  wconfig.num_requests = 4000;
  wconfig.num_users = 150;
  wconfig.zipf_alpha = 0.9;
  const auto dynamic_requests = trace::WorkloadGenerator(site, wconfig).generate();

  // Static objects: Zipf-popular, 8-100 KB, perfectly cachable.
  util::Rng rng(606);
  const util::ZipfSampler static_zipf(300, 0.9);
  struct StaticObject {
    std::size_t size;
  };
  std::vector<StaticObject> static_objects;
  for (int i = 0; i < 300; ++i) {
    static_objects.push_back({8192 + rng.next_below(92 * 1024)});
  }

  std::uint64_t total_bytes = 0;       // what clients consume
  std::uint64_t stock_origin = 0;      // origin bytes, stock proxy
  std::uint64_t cbde_origin = 0;       // origin bytes, proxy + delta-server
  std::uint64_t requests = 0;
  std::uint64_t stock_hits = 0;

  // Stock proxy for static objects (shared by both scenarios).
  std::map<std::size_t, bool> static_cached;

  core::PipelineConfig pconfig;
  pconfig.measure_latency = false;
  core::Pipeline pipeline(origin, pconfig, rules);

  for (const auto& req : dynamic_requests) {
    // One static request interleaved per dynamic request (50/50 mix).
    {
      const std::size_t obj = static_zipf.sample(rng);
      const std::size_t size = static_objects[obj].size;
      total_bytes += size;
      ++requests;
      if (static_cached[obj]) {
        ++stock_hits;  // proxy hit in both scenarios
      } else {
        static_cached[obj] = true;
        stock_origin += size;
        cbde_origin += size;
      }
    }
    // The dynamic request.
    const auto doc = origin.document(req.url, req.user_id, req.time);
    total_bytes += doc->size();
    ++requests;
    stock_origin += doc->size();  // stock proxy: dynamic = uncachable miss
    pipeline.process(req.user_id, req.url, req.time);
  }
  const auto report = pipeline.report();
  cbde_origin += report.server.wire_bytes + report.origin_base_bytes;

  const double stock_savings =
      1.0 - static_cast<double>(stock_origin) / static_cast<double>(total_bytes);
  const double cbde_savings =
      1.0 - static_cast<double>(cbde_origin) / static_cast<double>(total_bytes);

  std::printf("requests (50%% static / 50%% dynamic)   %llu\n",
              static_cast<unsigned long long>(requests));
  std::printf("client-consumed bytes                  %.0f KB\n", to_kb(total_bytes));
  print_rule(64);
  std::printf("%-34s %12s %12s\n", "", "stock proxy", "+ CBDE");
  std::printf("%-34s %9.0f KB %9.0f KB\n", "origin traffic", to_kb(stock_origin),
              to_kb(cbde_origin));
  std::printf("%-34s %11.1f%% %11.1f%%\n", "traffic eliminated", stock_savings * 100.0,
              cbde_savings * 100.0);
  std::printf(
      "\nShape check: stock proxy eliminates ~40%% of traffic (static share only);\n"
      "with class-based delta-encoding the eliminated share climbs to ~80%%+\n"
      "(paper's cited ceiling once dynamic redundancy is exploitable).\n");
  const bool ok = stock_savings > 0.25 && stock_savings < 0.55 && cbde_savings > 0.70;
  std::printf("%s\n", ok ? "shape OK" : "SHAPE CHECK FAILED");
  return ok ? 0 : 1;
}
