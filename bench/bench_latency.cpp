// §VI-A latency analysis — converting bandwidth savings into latency
// savings.
//
// The paper's argument: for S1 = 30 KB (document) vs S2 = 1 KB (gzipped
// delta), L1/L2 ~ log2(S1/S2) ~ 5 on a high-bandwidth path (TCP slow-start
// rounds dominate) and ~10 on a 56 kb/s modem (transmission dominates but
// fixed costs moderate the 30x size ratio). We measure both ratios from the
// TCP model, sweep the size axis, and then measure the end-to-end latency
// ratio the pipeline delivers on a modem population ("the latency perceived
// by most users by a factor of 10 on average").
#include <cstdio>

#include "bench_common.hpp"
#include "core/simulation.hpp"
#include "netsim/tcp_model.hpp"

namespace {

using namespace cbde;

void sweep(const char* label, const netsim::LinkProfile& link) {
  std::printf("\n%s (bw=%.0f kb/s, rtt=%lld ms):\n", label, link.bandwidth_bps / 1000.0,
              static_cast<long long>(link.rtt / util::kMillisecond));
  std::printf("  %10s %8s %12s %12s %12s %12s\n", "size", "rounds", "slowstart ms",
              "transmit ms", "total ms", "no-setup ms");
  for (std::size_t kb : {1, 2, 4, 8, 16, 30, 64, 128}) {
    const auto lat = netsim::transfer_latency(kb * 1024, link);
    std::printf("  %8zu KB %8d %12.1f %12.1f %12.1f %12.1f\n", kb, lat.rounds,
                static_cast<double>(lat.slow_start) / 1000.0,
                static_cast<double>(lat.transmission) / 1000.0,
                static_cast<double>(lat.total()) / 1000.0,
                static_cast<double>(lat.total_no_setup()) / 1000.0);
  }
}

}  // namespace

int main() {
  using cbde::bench::print_title;

  print_title(
      "SVI-A latency -- TCP transfer model: L1/L2 for a 30 KB document vs a 1 KB\n"
      "gzipped delta (paper: ~5 on high bandwidth, ~10 on a 56k modem)");

  const auto broadband = netsim::LinkProfile::broadband();
  const auto modem = netsim::LinkProfile::modem();
  sweep("high-bandwidth", broadband);
  sweep("56k modem", modem);

  const double hb_ratio =
      static_cast<double>(netsim::transfer_latency(30 * 1024, broadband).total_no_setup()) /
      static_cast<double>(netsim::transfer_latency(1 * 1024, broadband).total_no_setup());
  const double modem_ratio =
      static_cast<double>(netsim::transfer_latency(30 * 1024, modem).total()) /
      static_cast<double>(netsim::transfer_latency(1 * 1024, modem).total());
  std::printf("\nL1/L2, S1=30KB vs S2=1KB:\n");
  std::printf("  high bandwidth: paper ~5     measured %.2f (slow-start rounds)\n",
              hb_ratio);
  std::printf("  56k modem:      paper ~10    measured %.2f (incl. setup/loss/queueing)\n",
              modem_ratio);

  // End-to-end: latency ratio delivered by the full pipeline on a modem
  // population, deltas + base-file fetches included.
  trace::SiteConfig sconfig;
  sconfig.docs_per_category = 40;
  sconfig.categories = {"portal", "news", "finance"};
  const trace::SiteModel site(sconfig);
  server::OriginServer origin;
  origin.add_site(site);
  http::RuleBook rules;
  rules.add_rule(sconfig.host, site.partition_rule());

  core::PipelineConfig config;
  config.client_link = modem;
  trace::WorkloadConfig wconfig;
  wconfig.num_requests = 3000;
  wconfig.num_users = 150;
  core::Pipeline pipeline(origin, config, rules);
  pipeline.process_all(trace::WorkloadGenerator(site, wconfig).generate());
  const auto report = pipeline.report();

  std::printf("\nEnd-to-end pipeline on modem clients (%llu requests):\n",
              static_cast<unsigned long long>(report.requests));
  std::printf("  mean latency   direct %.2f s -> with CBDE %.2f s  (ratio %.1f)\n",
              report.latency_direct_us.mean() / 1e6, report.latency_actual_us.mean() / 1e6,
              report.mean_latency_ratio());
  std::printf("  median latency direct %.2f s -> with CBDE %.2f s  (ratio %.1f)\n",
              report.latency_direct_us.percentile(0.5) / 1e6,
              report.latency_actual_us.percentile(0.5) / 1e6,
              report.latency_direct_us.percentile(0.5) /
                  report.latency_actual_us.percentile(0.5));
  std::printf("  p90 latency    direct %.2f s -> with CBDE %.2f s\n",
              report.latency_direct_us.percentile(0.9) / 1e6,
              report.latency_actual_us.percentile(0.9) / 1e6);
  std::printf(
      "\nShape check: high-bandwidth ratio ~5, modem ratio ~10, pipeline median\n"
      "ratio in the 5-15x band (paper: \"latency ... by a factor of 10 ... on average\").\n");

  const double median_ratio = report.latency_direct_us.percentile(0.5) /
                              report.latency_actual_us.percentile(0.5);
  const bool ok = hb_ratio > 3 && hb_ratio < 7 && modem_ratio > 6 && modem_ratio < 16 &&
                  median_ratio > 4;
  return ok ? 0 : 1;
}
