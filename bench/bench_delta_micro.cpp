// Micro-benchmarks for the delta and compression substrates
// (google-benchmark).
//
// Context for §VI-C: the paper measures 6-8 ms per delta for a 50-60 KB
// base-file on a PIII-866 with Vdelta, calling the CPU overhead
// "reasonable". These benchmarks measure our encoder's cost across document
// sizes and configurations, plus apply/compress/estimate costs, so the
// capacity model's constants can be sanity-checked on any host.
#include <benchmark/benchmark.h>

#include "compress/compressor.hpp"
#include "delta/delta.hpp"
#include "delta/vcdiff.hpp"
#include "trace/document.hpp"

namespace {

using namespace cbde;

trace::TemplateConfig sized_template(std::size_t page_bytes) {
  trace::TemplateConfig config;
  config.skeleton_bytes = page_bytes * 86 / 100;
  config.doc_unique_bytes = page_bytes * 6 / 100;
  config.volatile_bytes = page_bytes * 25 / 1000;
  config.personal_bytes = page_bytes / 100;
  return config;
}

struct Corpus {
  util::Bytes base;
  util::Bytes temporal;  // same document, later snapshot
  util::Bytes cross;     // sibling document, other user

  explicit Corpus(std::size_t page_bytes) {
    const trace::DocumentTemplate tmpl(7, sized_template(page_bytes));
    base = tmpl.generate(0, 1, 0);
    temporal = tmpl.generate(0, 1, 120 * util::kSecond);
    cross = tmpl.generate(3, 9, 120 * util::kSecond);
  }
};

void BM_DeltaEncodeFull_Temporal(benchmark::State& state) {
  const Corpus corpus(static_cast<std::size_t>(state.range(0)));
  std::size_t delta_size = 0;
  for (auto _ : state) {
    auto result = delta::encode(util::as_view(corpus.base), util::as_view(corpus.temporal));
    delta_size = result.delta.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["delta_B"] = static_cast<double>(delta_size);
  state.counters["doc_B"] = static_cast<double>(corpus.temporal.size());
}
BENCHMARK(BM_DeltaEncodeFull_Temporal)->Arg(10 << 10)->Arg(30 << 10)->Arg(55 << 10);

void BM_DeltaEncodeFull_CrossDoc(benchmark::State& state) {
  const Corpus corpus(static_cast<std::size_t>(state.range(0)));
  std::size_t delta_size = 0;
  for (auto _ : state) {
    auto result = delta::encode(util::as_view(corpus.base), util::as_view(corpus.cross));
    delta_size = result.delta.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["delta_B"] = static_cast<double>(delta_size);
}
BENCHMARK(BM_DeltaEncodeFull_CrossDoc)->Arg(10 << 10)->Arg(30 << 10)->Arg(55 << 10);

void BM_DeltaEstimateLight(benchmark::State& state) {
  const Corpus corpus(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        delta::estimate_delta_size(util::as_view(corpus.base), util::as_view(corpus.cross)));
  }
}
BENCHMARK(BM_DeltaEstimateLight)->Arg(10 << 10)->Arg(30 << 10)->Arg(55 << 10);

void BM_DeltaApply(benchmark::State& state) {
  const Corpus corpus(static_cast<std::size_t>(state.range(0)));
  const auto delta =
      delta::encode(util::as_view(corpus.base), util::as_view(corpus.cross)).delta;
  for (auto _ : state) {
    benchmark::DoNotOptimize(delta::apply(util::as_view(corpus.base), util::as_view(delta)));
  }
}
BENCHMARK(BM_DeltaApply)->Arg(10 << 10)->Arg(30 << 10)->Arg(55 << 10);

void BM_CompressDelta(benchmark::State& state) {
  const Corpus corpus(55 << 10);
  const auto delta =
      delta::encode(util::as_view(corpus.base), util::as_view(corpus.cross)).delta;
  std::size_t wire = 0;
  for (auto _ : state) {
    auto packed = compress::compress(util::as_view(delta));
    wire = packed.size();
    benchmark::DoNotOptimize(packed);
  }
  state.counters["raw_B"] = static_cast<double>(delta.size());
  state.counters["wire_B"] = static_cast<double>(wire);
}
BENCHMARK(BM_CompressDelta);

void BM_CompressDocument(benchmark::State& state) {
  const Corpus corpus(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress::compress(util::as_view(corpus.cross)));
  }
}
BENCHMARK(BM_CompressDocument)->Arg(30 << 10);

void BM_DecompressDocument(benchmark::State& state) {
  const Corpus corpus(30 << 10);
  const auto packed = compress::compress(util::as_view(corpus.cross));
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress::decompress(util::as_view(packed)));
  }
}
BENCHMARK(BM_DecompressDocument);

void BM_VcdiffEncode_CrossDoc(benchmark::State& state) {
  const Corpus corpus(static_cast<std::size_t>(state.range(0)));
  std::size_t delta_size = 0;
  for (auto _ : state) {
    auto delta = delta::vcdiff_encode(util::as_view(corpus.base), util::as_view(corpus.cross));
    delta_size = delta.size();
    benchmark::DoNotOptimize(delta);
  }
  state.counters["delta_B"] = static_cast<double>(delta_size);
}
BENCHMARK(BM_VcdiffEncode_CrossDoc)->Arg(30 << 10)->Arg(55 << 10);

void BM_VcdiffApply(benchmark::State& state) {
  const Corpus corpus(30 << 10);
  const auto delta =
      delta::vcdiff_encode(util::as_view(corpus.base), util::as_view(corpus.cross));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        delta::vcdiff_apply(util::as_view(corpus.base), util::as_view(delta)));
  }
}
BENCHMARK(BM_VcdiffApply);

void BM_DocumentGeneration(benchmark::State& state) {
  const trace::DocumentTemplate tmpl(7, sized_template(45 << 10));
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tmpl.generate(i % 16, i % 100, static_cast<long>(i)));
    ++i;
  }
}
BENCHMARK(BM_DocumentGeneration);

}  // namespace

BENCHMARK_MAIN();
