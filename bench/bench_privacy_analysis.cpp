// §V analysis — probability that private information survives
// anonymization.
//
// Model: the base-file is anonymized against N documents; each shares
// private information with the base independently with probability p
// (i.i.d. case), or with decaying probability p_j = p^j for the j-th such
// occurrence (the paper's refinement). Private data leaks if at least M of
// the N documents vouch for it. The paper derives
//   i.i.d.:    P_error <= (Ne/M)^M p^M        (exact: sum of binomial tail)
//   decaying:  P_error <= (Ne/M)^M p^(M(M+1)/2)
// and evaluates p=0.01, N=10, M=5: bound 4.7e-7, exact 2.4e-8.
//
// We compute the exact tail, Monte-Carlo both models where measurable, and
// print the paper's example row.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "util/rng.hpp"

namespace {

using namespace cbde;

double binom_coeff(std::size_t n, std::size_t k) {
  double c = 1;
  for (std::size_t i = 0; i < k; ++i) {
    c *= static_cast<double>(n - i) / static_cast<double>(i + 1);
  }
  return c;
}

double binom_tail(std::size_t n, std::size_t m, double p) {
  double total = 0;
  for (std::size_t i = m; i <= n; ++i) {
    total += binom_coeff(n, i) * std::pow(p, static_cast<double>(i)) *
             std::pow(1 - p, static_cast<double>(n - i));
  }
  return total;
}

double iid_bound(std::size_t n, std::size_t m, double p) {
  return std::pow(static_cast<double>(n) * std::exp(1.0) / static_cast<double>(m),
                  static_cast<double>(m)) *
         std::pow(p, static_cast<double>(m));
}

double decaying_bound(std::size_t n, std::size_t m, double p) {
  return std::pow(static_cast<double>(n) * std::exp(1.0) / static_cast<double>(m),
                  static_cast<double>(m)) *
         std::pow(p, static_cast<double>(m * (m + 1)) / 2.0);
}

double monte_carlo_iid(std::size_t n, std::size_t m, double p, std::size_t trials,
                       util::Rng& rng) {
  std::size_t leaks = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    std::size_t x = 0;
    for (std::size_t i = 0; i < n; ++i) x += rng.bernoulli(p);
    leaks += x >= m;
  }
  return static_cast<double>(leaks) / static_cast<double>(trials);
}

double monte_carlo_decaying(std::size_t n, std::size_t m, double p, std::size_t trials,
                            util::Rng& rng) {
  std::size_t leaks = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    std::size_t x = 0;
    for (std::size_t i = 0; i < n; ++i) {
      // p_j = p^j for the j-th sharing occurrence.
      const double pj = std::pow(p, static_cast<double>(x + 1));
      x += rng.bernoulli(pj);
    }
    leaks += x >= m;
  }
  return static_cast<double>(leaks) / static_cast<double>(trials);
}

}  // namespace

int main() {
  using cbde::bench::print_rule;
  using cbde::bench::print_title;

  print_title(
      "SV analysis -- P(private data survives M-of-N anonymization): exact tail,\n"
      "Monte Carlo, and the paper's bounds (i.i.d. and decaying-p models)");

  util::Rng rng(77001);
  std::printf("i.i.d. sharing model:\n");
  std::printf("%6s %3s %3s | %12s %12s %12s\n", "p", "N", "M", "monte-carlo", "exact",
              "bound");
  print_rule(60);
  bool ok = true;
  struct Case {
    double p;
    std::size_t n, m;
  };
  for (const Case c : {Case{0.30, 10, 5}, {0.20, 10, 4}, {0.10, 10, 3}, {0.10, 8, 4},
                       {0.05, 12, 3}}) {
    const double mc = monte_carlo_iid(c.n, c.m, c.p, 400000, rng);
    const double exact = binom_tail(c.n, c.m, c.p);
    const double b = iid_bound(c.n, c.m, c.p);
    std::printf("%6.2f %3zu %3zu | %12.3g %12.3g %12.3g %s\n", c.p, c.n, c.m, mc, exact,
                b, exact <= b * 1.0001 ? "" : " <-- EXCEEDS");
    ok &= exact <= b * 1.0001;
    ok &= std::abs(mc - exact) < 5e-3 + exact * 0.2;
  }

  std::printf("\ndecaying model (p_j = p^j):\n");
  std::printf("%6s %3s %3s | %12s %12s\n", "p", "N", "M", "monte-carlo", "bound");
  print_rule(48);
  for (const Case c : {Case{0.40, 10, 3}, {0.30, 10, 3}, {0.30, 8, 2}}) {
    const double mc = monte_carlo_decaying(c.n, c.m, c.p, 400000, rng);
    const double b = decaying_bound(c.n, c.m, c.p);
    std::printf("%6.2f %3zu %3zu | %12.3g %12.3g %s\n", c.p, c.n, c.m, mc, b,
                mc <= b * 1.2 ? "" : " <-- EXCEEDS");
    ok &= mc <= b * 1.2;
  }

  std::printf("\npaper's example row (p=0.01, N=10, M=5):\n");
  std::printf("  paper: bound 4.7e-7, exact 2.4e-8\n");
  std::printf("  ours:  bound %.3g, exact %.3g, decaying bound %.3g\n",
              iid_bound(10, 5, 0.01), binom_tail(10, 5, 0.01),
              decaying_bound(10, 5, 0.01));

  std::printf("\nShape check %s: exact tail below the bound everywhere, Monte Carlo\n"
              "matches the exact tail, decaying model strictly safer than i.i.d.\n",
              ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
