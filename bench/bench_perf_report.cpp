// Performance report harness (docs/PERFORMANCE.md).
//
// Unlike the experiment benches (which reproduce paper tables), this binary
// measures the implementation itself and writes a machine-readable
// BENCH_delta.json so perf changes are visible across commits:
//   * micro: one-shot vs cached-index delta encode, size-only estimate,
//     apply(), crc32 — throughput MB/s, ns/op, delta-size ratios;
//   * end-to-end: DeltaServer::serve() driven through a DeltaWorkerPool
//     with 1 and 4 workers — ns/request and the multi-thread speedup.
//
// Flags:
//   --smoke              tiny corpus / few iterations (CI sanity run, < 1 s)
//   --out PATH           where to write the JSON (default: BENCH_delta.json)
//   --metrics-out PATH   dump the end-to-end run's metrics registry in
//                        Prometheus text exposition format
//   --metrics-json PATH  same snapshot as JSON
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "alloc_hook.hpp"
#include "bench_common.hpp"
#include "core/delta_server.hpp"
#include "core/delta_worker_pool.hpp"
#include "delta/delta.hpp"
#include "delta/inplace.hpp"
#include "delta/ir.hpp"
#include "obs/obs.hpp"
#include "obs/time_series.hpp"
#include "trace/site.hpp"
#include "util/hash.hpp"

namespace cbde {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double, std::nano>(t1 - t0).count();
}

double mbps(std::size_t bytes, double ns) {
  return ns <= 0 ? 0.0 : static_cast<double>(bytes) / (ns / 1e9) / (1024.0 * 1024.0);
}

/// Time `fn` (which must consume/produce `bytes_per_op`) for `iters`
/// iterations after `warmup` untimed ones; returns ns per iteration.
template <typename Fn>
double time_op(int warmup, int iters, Fn&& fn) {
  for (int i = 0; i < warmup; ++i) fn();
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) fn();
  return elapsed_ns(t0, Clock::now()) / iters;
}

trace::TemplateConfig sized_template(std::size_t page_bytes) {
  trace::TemplateConfig config;
  config.skeleton_bytes = page_bytes * 86 / 100;
  config.doc_unique_bytes = page_bytes * 6 / 100;
  config.volatile_bytes = page_bytes * 25 / 1000;
  config.personal_bytes = page_bytes / 100;
  return config;
}

using bench::JsonWriter;

struct EndToEndResult {
  double ns_per_request = 0;
  double doc_mbps = 0;
  double delta_ratio = 0;  ///< wire bytes / document bytes over the run
  /// operator-new calls per request over the timed region (serve proper plus
  /// the pool's submit/future machinery) — the measured twin of the static
  /// hot-path inventory in build/sema_allocs.json.
  double allocs_per_request = 0;
};

/// Drive a fresh DeltaServer through a DeltaWorkerPool: one warmup pass
/// creates the classes and publishes bases, then `requests` timed requests
/// fan out over `workers` threads.
EndToEndResult run_end_to_end(const trace::SiteModel& site, std::size_t workers,
                              std::size_t requests,
                              std::shared_ptr<obs::Obs> obs_instance = nullptr) {
  core::DeltaServerConfig config;
  config.anonymize = false;  // steady state: every request is grouped+encoded
  config.selector.sample_prob = 0.05;
  config.rebase_timeout = 1000000 * util::kSecond;
  config.basic_rebase_after = 1 << 20;
  config.obs_instance = std::move(obs_instance);

  http::RuleBook rules;
  rules.add_rule(site.config().host, site.partition_rule());
  core::DeltaServer server(config, std::move(rules));

  // Warmup: create one class per category and publish its base.
  const std::size_t cats = site.num_categories();
  for (std::size_t c = 0; c < cats; ++c) {
    const trace::DocRef ref{c, 0};
    const util::Bytes doc = site.generate(ref, 1, 0);
    server.serve(1, site.url_for(ref), util::as_view(doc), 0);
  }

  // Pre-generate the request stream so document generation is not timed.
  struct Req {
    std::uint64_t user;
    http::Url url;
    util::Bytes doc;
    util::SimTime now;
  };
  std::vector<Req> stream;
  stream.reserve(requests);
  std::size_t doc_bytes = 0;
  for (std::size_t i = 0; i < requests; ++i) {
    const trace::DocRef ref{i % cats, 1 + i % (site.config().docs_per_category - 1)};
    const std::uint64_t user = 2 + i % 17;
    const util::SimTime now = static_cast<util::SimTime>(i) * util::kSecond;
    Req req{user, site.url_for(ref), site.generate(ref, user, now), now};
    doc_bytes += req.doc.size();
    stream.push_back(std::move(req));
  }

  std::vector<std::future<core::ServedResponse>> futures;
  futures.reserve(requests);
  const std::uint64_t allocs_before = bench::alloc_count();
  const auto t0 = Clock::now();
  {
    core::DeltaWorkerPool pool(server, workers);
    for (Req& req : stream) {
      futures.push_back(
          pool.submit(req.user, std::move(req.url), std::move(req.doc), req.now));
    }
    pool.shutdown();
  }
  std::size_t wire_bytes = 0;
  for (auto& f : futures) wire_bytes += f.get().wire_body.size();
  const double total_ns = elapsed_ns(t0, Clock::now());
  const std::uint64_t allocs_after = bench::alloc_count();

  EndToEndResult result;
  result.ns_per_request = total_ns / static_cast<double>(requests);
  result.doc_mbps = mbps(doc_bytes, total_ns);
  result.delta_ratio = static_cast<double>(wire_bytes) / static_cast<double>(doc_bytes);
  result.allocs_per_request =
      static_cast<double>(allocs_after - allocs_before) / static_cast<double>(requests);
  return result;
}

}  // namespace
}  // namespace cbde

int main(int argc, char** argv) {
  using namespace cbde;

  bool smoke = false;
  std::string out_path = "BENCH_delta.json";
  std::string metrics_out;
  std::string metrics_json;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      metrics_json = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--out PATH] [--metrics-out PATH]"
                   " [--metrics-json PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::size_t page = smoke ? (8 << 10) : (55 << 10);
  const int iters = smoke ? 20 : 200;
  const std::size_t e2e_requests = smoke ? 32 : 256;

  // Micro corpus: one template, three documents — the base, a later snapshot
  // of the same document (temporal delta) and another user's different
  // document (cross delta), mirroring the paper's two delta populations.
  const trace::DocumentTemplate tmpl(7, sized_template(page));
  const util::Bytes base = tmpl.generate(0, 1, 0);
  const util::Bytes temporal = tmpl.generate(0, 1, 120 * util::kSecond);
  const util::Bytes cross = tmpl.generate(3, 9, 120 * util::kSecond);
  const delta::Encoder cached(base);  // full params, index built once

  JsonWriter json;
  json.open("config");
  json.field("page_bytes", page);
  json.field("smoke", static_cast<std::size_t>(smoke ? 1 : 0));
  json.field("end_to_end_requests", e2e_requests);
  // Thread scaling is bounded by the cores actually available; on a 1-core
  // host speedup_4v1 ~ 1.0 measures pool overhead, not parallelism.
  json.field("hardware_concurrency",
             static_cast<std::size_t>(std::thread::hardware_concurrency()));
  json.close();

  const auto bench_encode = [&](const char* key, const util::Bytes& target,
                                bool use_cached) {
    std::size_t delta_bytes = 0;
    const double ns = time_op(3, iters, [&] {
      delta_bytes = use_cached
                        ? cached.encode(util::as_view(target)).delta.size()
                        : delta::encode(util::as_view(base), util::as_view(target))
                              .delta.size();
    });
    json.open(key);
    json.field("ns_per_op", ns);
    json.field("mbps", mbps(target.size(), ns));
    json.field("delta_bytes", delta_bytes);
    json.field("delta_ratio",
               static_cast<double>(delta_bytes) / static_cast<double>(target.size()));
    json.close();
    std::printf("%-28s %12.0f ns   %8.2f MB/s   delta %zu B\n", key, ns,
                mbps(target.size(), ns), delta_bytes);
  };

  json.open("micro");
  bench_encode("encode_oneshot_temporal", temporal, false);
  bench_encode("encode_oneshot_cross", cross, false);
  bench_encode("encode_cached_temporal", temporal, true);
  bench_encode("encode_cached_cross", cross, true);

  {
    std::size_t size = 0;
    const double ns = time_op(3, iters, [&] {
      size = cached.encode_size(util::as_view(cross));
    });
    json.open("encode_size_cached_cross");
    json.field("ns_per_op", ns);
    json.field("delta_bytes", size);
    json.close();
    std::printf("%-28s %12.0f ns   (size %zu B)\n", "encode_size_cached_cross", ns, size);
  }
  {
    std::size_t size = 0;
    const double ns = time_op(3, iters, [&] {
      size = delta::estimate_delta_size(util::as_view(base), util::as_view(cross));
    });
    json.open("estimate_light");
    json.field("ns_per_op", ns);
    json.field("delta_bytes", size);
    json.close();
    std::printf("%-28s %12.0f ns   (size %zu B)\n", "estimate_light", ns, size);
  }
  {
    const util::Bytes delta_bytes = cached.encode(util::as_view(cross)).delta;
    const double ns = time_op(3, iters * 4, [&] {
      (void)delta::apply(util::as_view(base), util::as_view(delta_bytes));
    });
    json.open("apply");
    json.field("ns_per_op", ns);
    json.field("mbps", mbps(cross.size(), ns));
    json.close();
    std::printf("%-28s %12.0f ns   %8.2f MB/s\n", "apply", ns, mbps(cross.size(), ns));
  }
  {
    std::uint32_t sink = 0;
    const double ns = time_op(3, iters * 20, [&] {
      sink ^= util::crc32(util::as_view(base));
    });
    json.open("crc32");
    json.field("ns_per_op", ns);
    json.field("mbps", mbps(base.size(), ns));
    json.close();
    std::printf("%-28s %12.0f ns   %8.2f MB/s   (sink %u)\n", "crc32", ns,
                mbps(base.size(), ns), sink);
  }
  json.close();  // micro

  // One shared telemetry domain for the codec sweep and the end-to-end
  // runs below, so the --metrics-out snapshot carries the in-place
  // instrument families alongside the serve-path metrics.
  obs::ObsConfig e2e_obs_config;
  e2e_obs_config.sample_rate = 0.01;
  e2e_obs_config.lock_profile = true;  // lock_wait_share in the windows below
  auto e2e_obs = std::make_shared<obs::Obs>(e2e_obs_config);
  const delta::InPlaceInstruments inplace_ins =
      delta::InPlaceInstruments::attach(*e2e_obs);

  // Codec family sweep (docs/PERFORMANCE.md codec table): the same
  // base/cross pair through each encoder tier — the full hash-chain index
  // and the two O(1)-state rolling-hash matchers — plus the in-place
  // analysis verdict on each codec's output. The one-pass size factor is
  // the quality floor ci.sh's inplace stage pins (<= 3x hash-chain).
  json.open("codecs");
  const std::pair<const char*, delta::DeltaParams> codec_set[] = {
      {"hash_chain", delta::DeltaParams::full()},
      {"one_pass", delta::DeltaParams::one_pass()},
      {"correcting", delta::DeltaParams::correcting()},
  };
  std::size_t hash_chain_bytes = 0, one_pass_bytes = 0;
  for (const auto& [codec_name, codec_params] : codec_set) {
    const delta::Encoder enc(base, codec_params);
    util::Bytes wire;
    const double encode_ns = time_op(3, iters, [&] {
      wire = enc.encode(util::as_view(cross)).delta;
    });
    const double apply_ns = time_op(3, iters * 4, [&] {
      (void)delta::apply(util::as_view(base), util::as_view(wire));
    });

    // In-place verdict on this codec's output. Unsafe programs (the
    // hash-chain codec emits self-referential target copies) go through
    // the transformer; the timed loop then runs the certified wire.
    const delta::Program prog = delta::lift(util::as_view(wire));
    const delta::VerifyResult verdict = delta::verify_in_place(prog);
    util::Bytes certified = wire;
    bool transformed = false;
    std::size_t scratch = verdict.scratch_bound;
    if (!verdict.in_place_safe) {
      const delta::TransformResult t =
          delta::transform_in_place(prog, util::as_view(base), {}, &inplace_ins);
      certified = delta::lower(t.program);
      transformed = t.transformed;
      scratch = t.scratch_bytes;
    }
    util::Bytes buf;
    const double inplace_ns = time_op(3, iters * 4, [&] {
      buf = base;
      delta::apply_in_place(buf, util::as_view(certified), &inplace_ins);
    });
    const delta::DeltaLintStats lint = delta::delta_lint(prog, wire.size());
    inplace_ins.observe_lint(lint);

    if (std::strcmp(codec_name, "hash_chain") == 0) hash_chain_bytes = wire.size();
    if (std::strcmp(codec_name, "one_pass") == 0) one_pass_bytes = wire.size();

    json.open(codec_name);
    json.field("encode_ns_per_op", encode_ns);
    json.field("encode_mbps", mbps(cross.size(), encode_ns));
    json.field("delta_bytes", wire.size());
    json.field("delta_ratio",
               static_cast<double>(wire.size()) / static_cast<double>(cross.size()));
    json.field("apply_ns_per_op", apply_ns);
    json.field("apply_in_place_ns_per_op", inplace_ns);
    json.field("inplace_safe", static_cast<std::size_t>(verdict.in_place_safe ? 1 : 0));
    json.field("inplace_transformed", static_cast<std::size_t>(transformed ? 1 : 0));
    json.field("inplace_scratch_bytes", scratch);
    json.field("lint_overhead_bytes", lint.instruction_overhead_bytes);
    json.close();
    std::printf("codec %-22s %12.0f ns   %8.2f MB/s   delta %zu B   scratch %zu B\n",
                codec_name, encode_ns, mbps(cross.size(), encode_ns), wire.size(),
                scratch);
  }
  json.field("one_pass_vs_hash_chain_size_factor",
             hash_chain_bytes == 0
                 ? 0.0
                 : static_cast<double>(one_pass_bytes) /
                       static_cast<double>(hash_chain_bytes));
  json.close();  // codecs

  // Observability overhead on the smoke encode loop: the same cached encode
  // bare, then wrapped with everything serve() adds per request (two clock
  // reads, two histogram observes, a counter and a double-counter). Under a
  // CBDE_OBS_OFF build the wrapped loop degenerates to the bare one (clock
  // reads return 0, observes compile out), so comparing `overhead_pct`
  // across the two build flavors in BENCH_delta.json captures the full
  // instrumented-vs-compiled-out cost. Min-of-rounds damps scheduler noise.
  {
    obs::Obs bench_obs;
    obs::Counter& reqs =
        bench_obs.registry().counter("cbde_bench_requests_total", "Benchmark ops");
    obs::DoubleCounter& cpu = bench_obs.registry().double_counter(
        "cbde_bench_cpu_microseconds_total", "Benchmark modeled CPU");
    obs::Histogram& lat = bench_obs.histogram("cbde_bench_encode_latency_microseconds",
                                              "Benchmark encode latency");
    obs::Histogram& sz =
        bench_obs.histogram("cbde_bench_delta_size_bytes", "Benchmark delta size");
    // The overhead number is measured with a live TimeSeriesRecorder
    // snapshotting this registry in the background (the deployment shape:
    // telemetry windows closing while requests are served), so the <3% CI
    // gate covers the recorder's registry-snapshot cost too.
    obs::TimeSeriesConfig ts_config;
    ts_config.interval_us = 2000;
    obs::TimeSeriesRecorder recorder(bench_obs.registry(), ts_config);
    recorder.start();
    std::size_t sink = 0;
    double bare_ns = 0, instr_ns = 0;
    for (int round = 0; round < 3; ++round) {
      const double b = time_op(1, iters, [&] {
        sink = cached.encode(util::as_view(cross)).delta.size();
      });
      const double in = time_op(1, iters, [&] {
        const std::uint64_t t0 = obs::now_us();
        sink = cached.encode(util::as_view(cross)).delta.size();
        lat.observe(obs::now_us() - t0);
        sz.observe(sink);
        reqs.inc();
        cpu.add(1.5);
      });
      bare_ns = round == 0 ? b : std::min(bare_ns, b);
      instr_ns = round == 0 ? in : std::min(instr_ns, in);
    }
    recorder.stop();
    const double overhead_pct =
        bare_ns <= 0 ? 0.0 : (instr_ns - bare_ns) / bare_ns * 100.0;
    json.open("obs");
    json.field("compiled_out", static_cast<std::size_t>(obs::kCompiledOut ? 1 : 0));
    json.field("encode_bare_ns", bare_ns);
    json.field("encode_instrumented_ns", instr_ns);
    json.field("overhead_pct", overhead_pct);
    // Windows the background recorder closed while the loops above ran
    // (0 under CBDE_OBS_OFF, where start() refuses to spawn the thread).
    json.field("recorder_windows", static_cast<std::size_t>(recorder.ticks()));
    json.close();
    std::printf("%-28s %12.2f%%  (bare %.0f ns, instrumented %.0f ns, sink %zu)\n",
                "obs_overhead", overhead_pct, bare_ns, instr_ns, sink);
  }

  // End-to-end: full serve() path (grouping + encode + compress) through
  // the worker pool.
  trace::SiteConfig sconfig;
  sconfig.categories = {"c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7"};
  sconfig.docs_per_category = 16;
  sconfig.doc_template = sized_template(page);
  const trace::SiteModel site(sconfig);

  // One time-series window per worker-count run (manual ticks): the
  // `time_series` section perf_gate.py bands in BENCH_delta.json.
  obs::TimeSeriesRecorder e2e_recorder(e2e_obs->registry(), obs::TimeSeriesConfig{});

  json.open("end_to_end");
  double ns_1 = 0;
  double allocs_1 = 0, allocs_4 = 0;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    const EndToEndResult r = run_end_to_end(site, workers, e2e_requests, e2e_obs);
    e2e_recorder.tick();
    const std::string key = "workers_" + std::to_string(workers);
    json.open(key);
    json.field("ns_per_request", r.ns_per_request);
    json.field("doc_mbps", r.doc_mbps);
    json.field("wire_ratio", r.delta_ratio);
    json.field("allocs_per_request", r.allocs_per_request);
    json.close();
    std::printf("%-28s %12.0f ns/req %8.2f MB/s   wire ratio %.3f   %.1f allocs/req\n",
                key.c_str(), r.ns_per_request, r.doc_mbps, r.delta_ratio,
                r.allocs_per_request);
    if (workers == 1) {
      ns_1 = r.ns_per_request;
      allocs_1 = r.allocs_per_request;
    }
    if (workers == 4) {
      allocs_4 = r.allocs_per_request;
      if (ns_1 > 0) {
        json.field("speedup_4v1", ns_1 / r.ns_per_request);
        std::printf("%-28s %12.2fx\n", "speedup_4v1", ns_1 / r.ns_per_request);
      }
    }
  }
  json.close();  // end_to_end
  json.field_raw("time_series",
                 bench::time_series_summary_json(e2e_recorder.windows()));

  // Measured allocation budget — the dynamic twin of the static hot-path
  // inventory (tools/analyze/cbde_sema.py --allocs). ci.sh cross-checks
  // these figures against build/sema_allocs.json and the checked-in budget
  // in tools/analyze/alloc_budget.json.
  json.open("allocs");
  json.field("hook_active",
             static_cast<std::size_t>(bench::alloc_hook_active() ? 1 : 0));
  json.field("per_request_workers_1", allocs_1);
  json.field("per_request_workers_4", allocs_4);
  json.close();

  if (!metrics_out.empty()) {
    std::ofstream prom(metrics_out);
    if (!prom) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    prom << e2e_obs->registry().prometheus();
    std::printf("wrote %s\n", metrics_out.c_str());
  }
  if (!metrics_json.empty()) {
    std::ofstream mjson(metrics_json);
    if (!mjson) {
      std::fprintf(stderr, "cannot write %s\n", metrics_json.c_str());
      return 1;
    }
    mjson << e2e_obs->registry().json() << "\n";
    std::printf("wrote %s\n", metrics_json.c_str());
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json.finish();
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
