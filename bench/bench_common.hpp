// Shared helpers for the experiment-reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper and prints
// it side by side with the published numbers. Formatting is fixed-width
// plain text so `for b in build/bench/*; do $b; done` produces a readable
// report.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/time_series.hpp"

namespace cbde::bench {

inline void print_rule(std::size_t width = 78) {
  std::string line(width, '-');
  std::printf("%s\n", line.c_str());
}

inline void print_title(const std::string& title) {
  std::printf("\n");
  print_rule();
  std::printf("%s\n", title.c_str());
  print_rule();
}

inline double to_kb(std::uint64_t bytes) { return static_cast<double>(bytes) / 1024.0; }

/// Minimal nested-object JSON emitter for the BENCH_*.json artifacts
/// (machine-readable perf numbers tracked across commits).
struct JsonWriter {
  std::string out = "{\n";
  int depth = 1;
  bool first_in_scope = true;

  void indent() { out.append(static_cast<std::size_t>(depth) * 2, ' '); }
  void comma() {
    if (!first_in_scope) out += ",\n";
    first_in_scope = false;
  }
  void open(const std::string& key) {
    comma();
    indent();
    out += "\"" + key + "\": {\n";
    ++depth;
    first_in_scope = true;
  }
  void close() {
    out += "\n";
    --depth;
    indent();
    out += "}";
    first_in_scope = false;
  }
  void field(const std::string& key, double value) {
    comma();
    indent();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    out += "\"" + key + "\": " + buf;
  }
  void field(const std::string& key, std::size_t value) {
    comma();
    indent();
    out += "\"" + key + "\": " + std::to_string(value);
  }
  /// Pre-serialized JSON value (an array or object built elsewhere, e.g. the
  /// time-series window summaries). The caller guarantees `json_value` is
  /// valid JSON; it is spliced in verbatim.
  void field_raw(const std::string& key, const std::string& json_value) {
    comma();
    indent();
    out += "\"" + key + "\": " + json_value;
  }
  std::string finish() {
    out += "\n}\n";
    return out;
  }
};

/// Compact JSON array of per-window summaries for the BENCH_*.json
/// `time_series` sections (tools/obs/perf_gate.py reads these). The full
/// windows — every counter delta and histogram — go to the JSONL sink; this
/// is the derived-statistics view the regression gate bands.
inline std::string time_series_summary_json(
    const std::vector<obs::TimeSeriesWindow>& windows) {
  std::string out = "[";
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const obs::TimeSeriesWindow& w = windows[i];
    if (i > 0) out += ",";
    out += "{\"tick\":" + std::to_string(w.tick);
    out += ",\"span_seconds\":" + obs::format_double(w.span_seconds);
    out += ",\"serve_requests\":" + std::to_string(w.serve_requests);
    out += ",\"serve_p50_us\":" + obs::format_double(w.serve_p50_us);
    out += ",\"serve_p95_us\":" + obs::format_double(w.serve_p95_us);
    out += ",\"serve_p99_us\":" + obs::format_double(w.serve_p99_us);
    out += ",\"imbalance\":" + obs::format_double(w.imbalance);
    out += ",\"lock_wait_share\":" + obs::format_double(w.lock_wait_share);
    out += ",\"shard_rate\":[";
    for (std::size_t k = 0; k < w.shard_rate.size(); ++k) {
      if (k > 0) out += ",";
      out += obs::format_double(w.shard_rate[k]);
    }
    out += "]}";
  }
  out += "]";
  return out;
}

}  // namespace cbde::bench
