// Shared helpers for the experiment-reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper and prints
// it side by side with the published numbers. Formatting is fixed-width
// plain text so `for b in build/bench/*; do $b; done` produces a readable
// report.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace cbde::bench {

inline void print_rule(std::size_t width = 78) {
  std::string line(width, '-');
  std::printf("%s\n", line.c_str());
}

inline void print_title(const std::string& title) {
  std::printf("\n");
  print_rule();
  std::printf("%s\n", title.c_str());
  print_rule();
}

inline double to_kb(std::uint64_t bytes) { return static_cast<double>(bytes) / 1024.0; }

/// Minimal nested-object JSON emitter for the BENCH_*.json artifacts
/// (machine-readable perf numbers tracked across commits).
struct JsonWriter {
  std::string out = "{\n";
  int depth = 1;
  bool first_in_scope = true;

  void indent() { out.append(static_cast<std::size_t>(depth) * 2, ' '); }
  void comma() {
    if (!first_in_scope) out += ",\n";
    first_in_scope = false;
  }
  void open(const std::string& key) {
    comma();
    indent();
    out += "\"" + key + "\": {\n";
    ++depth;
    first_in_scope = true;
  }
  void close() {
    out += "\n";
    --depth;
    indent();
    out += "}";
    first_in_scope = false;
  }
  void field(const std::string& key, double value) {
    comma();
    indent();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    out += "\"" + key + "\": " + buf;
  }
  void field(const std::string& key, std::size_t value) {
    comma();
    indent();
    out += "\"" + key + "\": " + std::to_string(value);
  }
  std::string finish() {
    out += "\n}\n";
    return out;
  }
};

}  // namespace cbde::bench
