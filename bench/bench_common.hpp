// Shared helpers for the experiment-reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper and prints
// it side by side with the published numbers. Formatting is fixed-width
// plain text so `for b in build/bench/*; do $b; done` produces a readable
// report.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace cbde::bench {

inline void print_rule(std::size_t width = 78) {
  std::string line(width, '-');
  std::printf("%s\n", line.c_str());
}

inline void print_title(const std::string& title) {
  std::printf("\n");
  print_rule();
  std::printf("%s\n", title.c_str());
  print_rule();
}

inline double to_kb(std::uint64_t bytes) { return static_cast<double>(bytes) / 1024.0; }

}  // namespace cbde::bench
