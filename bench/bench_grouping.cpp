// §VI-B grouping performance.
//
// The paper's three claims about the automated grouping mechanism:
//   1. against a well-structured site it groups requests "after a couple of
//      tries" (given proper URL partition rules);
//   2. the number of produced groups is 10-100x smaller than the number of
//      dynamic documents;
//   3. no noticeable reduction of the bandwidth savings versus classless
//      (per-document) delta-encoding — while needing orders of magnitude
//      less server-side storage.
// This bench measures all three: a tries histogram, the class/document
// ratio, and a head-to-head against a classless delta-encoder that keeps
// one base per (user, URL).
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "compress/compressor.hpp"
#include "core/simulation.hpp"

namespace {

using namespace cbde;

/// Classless ("basic") delta-encoding reference: one base-file per
/// (user, URL), deltas against the previous snapshot; unbounded storage.
struct ClasslessReference {
  std::map<std::string, util::Bytes> bases;
  std::uint64_t direct_bytes = 0;
  std::uint64_t wire_bytes = 0;
  std::size_t storage() const {
    std::size_t total = 0;
    for (const auto& [key, base] : bases) total += base.size();
    return total;
  }

  void process(std::uint64_t user, const http::Url& url, const util::Bytes& doc) {
    direct_bytes += doc.size();
    const std::string key = std::to_string(user) + "|" + url.to_string();
    const auto it = bases.find(key);
    if (it == bases.end()) {
      wire_bytes += doc.size();
      bases.emplace(key, doc);
      return;
    }
    const auto delta = delta::encode(util::as_view(it->second), util::as_view(doc)).delta;
    const auto wire = compress::compress(util::as_view(delta));
    wire_bytes += std::min(wire.size(), doc.size());
    it->second = doc;
  }
};

}  // namespace

int main() {
  using cbde::bench::print_rule;
  using cbde::bench::print_title;
  using cbde::bench::to_kb;

  print_title(
      "SVI-B grouping -- tries per request, classes vs documents, and savings vs\n"
      "classless delta-encoding (paper: groups 10-100x fewer than documents,\n"
      "grouping after a couple of tries, no noticeable savings reduction)");

  trace::SiteConfig sconfig;
  sconfig.host = "www.megashop.example";
  sconfig.categories = {"laptops", "desktops", "monitors", "printers",
                        "tablets", "phones",   "cameras",  "audio"};
  sconfig.docs_per_category = 75;  // 600 documents
  const trace::SiteModel site(sconfig);
  server::OriginServer origin;
  origin.add_site(site);
  http::RuleBook rules;
  rules.add_rule(sconfig.host, site.partition_rule());

  trace::WorkloadConfig wconfig;
  wconfig.num_requests = 6000;
  wconfig.num_users = 250;
  wconfig.zipf_alpha = 0.9;
  const auto requests = trace::WorkloadGenerator(site, wconfig).generate();

  core::PipelineConfig config;
  config.measure_latency = false;
  core::Pipeline pipeline(origin, config, rules);

  ClasslessReference classless;
  for (const auto& req : requests) {
    pipeline.process(req.user_id, req.url, req.time);
    classless.process(req.user_id, req.url,
                      *origin.document(req.url, req.user_id, req.time));
  }
  const auto report = pipeline.report();
  const auto gstats = pipeline.delta_server().grouping_stats();

  // Distinct documents (and personalized variants) actually requested.
  std::map<std::string, std::size_t> distinct_docs;
  std::map<std::string, std::size_t> distinct_personalized;
  for (const auto& req : requests) {
    distinct_docs[req.url.to_string()] = 1;
    distinct_personalized[req.url.to_string() + "#" + std::to_string(req.user_id)] = 1;
  }

  std::printf("requests                        %zu\n", requests.size());
  std::printf("distinct documents (URLs)       %zu\n", distinct_docs.size());
  std::printf("distinct personalized versions  %zu\n", distinct_personalized.size());
  std::printf("classes produced                %zu\n", report.num_classes);
  std::printf("documents / classes             %.1fx   (paper: 10-100x)\n",
              static_cast<double>(distinct_docs.size()) /
                  static_cast<double>(report.num_classes));
  std::printf("personalized / classes          %.1fx\n",
              static_cast<double>(distinct_personalized.size()) /
                  static_cast<double>(report.num_classes));

  std::printf("\ntries-to-group histogram (delta estimations per request):\n");
  std::uint64_t within_two = 0;
  for (std::size_t t = 0; t < gstats.tries.buckets(); ++t) {
    const auto count = gstats.tries.bucket(t);
    if (count == 0) continue;
    if (t <= 2) within_two += count;
    std::printf("  %zu tries: %8llu (%.1f%%)\n", t,
                static_cast<unsigned long long>(count),
                100.0 * static_cast<double>(count) / static_cast<double>(gstats.requests));
  }
  std::printf("  grouped within <=2 tries: %.1f%%   (paper: \"after a couple of tries\")\n",
              100.0 * static_cast<double>(within_two) /
                  static_cast<double>(gstats.requests));

  const double class_savings = report.origin_savings() * 100.0;
  const double classless_savings =
      100.0 * (1.0 - static_cast<double>(classless.wire_bytes) /
                         static_cast<double>(classless.direct_bytes));
  print_rule();
  std::printf("%-34s %14s %14s\n", "", "class-based", "classless");
  std::printf("%-34s %13.1f%% %13.1f%%\n", "bandwidth savings", class_savings,
              classless_savings);
  std::printf("%-34s %11.0f KB %11.0f KB\n", "server-side base storage",
              to_kb(report.storage_bytes), to_kb(classless.storage()));
  std::printf("%-34s %14zu %14zu\n", "base-files stored", report.num_classes,
              classless.bases.size());
  std::printf(
      "\nShape check: class-based savings within a few points of classless\n"
      "(paper: \"no noticeable reduction\") at a fraction of the storage.\n");

  const bool ok = report.num_classes * 10 <= distinct_docs.size() &&
                  within_two * 10 >= gstats.requests * 9 &&
                  class_savings > classless_savings - 8.0 &&
                  report.storage_bytes * 5 < classless.storage();
  return ok ? 0 : 1;
}
