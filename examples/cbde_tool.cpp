// cbde_tool — command-line front door to the delta and compression codecs,
// so the library is usable on real files without writing any code.
//
//   cbde_tool delta   <base> <target> <out.delta>     native CBD1 encode
//   cbde_tool patch   <base> <in.delta> <out>         native CBD1 apply
//   cbde_tool vcdiff  <base> <target> <out.delta>     VCDIFF-style encode
//   cbde_tool vcpatch <base> <in.delta> <out>         VCDIFF-style apply
//   cbde_tool pack    <in> <out.cbz>                  compress
//   cbde_tool unpack  <in.cbz> <out>                  decompress
//   cbde_tool info    <delta-or-cbz>                  inspect a container
#include <cstdio>
#include <fstream>
#include <string>

#include "compress/compressor.hpp"
#include "delta/delta.hpp"
#include "delta/vcdiff.hpp"

namespace {

using cbde::util::Bytes;
using cbde::util::as_view;

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  return Bytes(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const Bytes& data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  cbde_tool delta   <base> <target> <out.delta>\n"
               "  cbde_tool patch   <base> <in.delta> <out>\n"
               "  cbde_tool vcdiff  <base> <target> <out.delta>\n"
               "  cbde_tool vcpatch <base> <in.delta> <out>\n"
               "  cbde_tool pack    <in> <out.cbz>\n"
               "  cbde_tool unpack  <in.cbz> <out>\n"
               "  cbde_tool info    <container>\n");
  return 2;
}

void info(const Bytes& blob) {
  if (blob.size() >= 4) {
    const std::string magic(blob.begin(), blob.begin() + 4);
    if (magic == "CBD1") {
      const auto i = cbde::delta::inspect(as_view(blob));
      std::printf("CBD1 delta: base %zu B (crc %08x) -> target %zu B (crc %08x), "
                  "container %zu B\n",
                  i.base_size, i.base_crc, i.target_size, i.target_crc, blob.size());
      return;
    }
    if (magic == "VCD1") {
      const auto i = cbde::delta::vcdiff_inspect(as_view(blob));
      std::printf("VCD1 delta: base %zu B -> target %zu B; sections data=%zu "
                  "inst=%zu addr=%zu, container %zu B\n",
                  i.base_size, i.target_size, i.data_section, i.inst_section,
                  i.addr_section, blob.size());
      return;
    }
    if (magic == "CBZ1") {
      const Bytes out = cbde::compress::decompress(as_view(blob));
      std::printf("CBZ1 block: %zu B compressed -> %zu B (%.2fx)\n", blob.size(),
                  out.size(),
                  static_cast<double>(out.size()) / static_cast<double>(blob.size()));
      return;
    }
  }
  std::printf("unknown container (%zu bytes)\n", blob.size());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "delta" && argc == 5) {
      const Bytes base = read_file(argv[2]);
      const Bytes target = read_file(argv[3]);
      const auto result = cbde::delta::encode(as_view(base), as_view(target));
      write_file(argv[4], result.delta);
      std::printf("%zu -> %zu bytes (%.1f%% of target)\n", target.size(),
                  result.delta.size(),
                  100.0 * static_cast<double>(result.delta.size()) /
                      static_cast<double>(std::max<std::size_t>(target.size(), 1)));
    } else if (cmd == "patch" && argc == 5) {
      write_file(argv[4],
                 cbde::delta::apply(as_view(read_file(argv[2])), as_view(read_file(argv[3]))));
    } else if (cmd == "vcdiff" && argc == 5) {
      const Bytes delta =
          cbde::delta::vcdiff_encode(as_view(read_file(argv[2])), as_view(read_file(argv[3])));
      write_file(argv[4], delta);
      std::printf("%zu bytes written\n", delta.size());
    } else if (cmd == "vcpatch" && argc == 5) {
      write_file(argv[4], cbde::delta::vcdiff_apply(as_view(read_file(argv[2])),
                                                    as_view(read_file(argv[3]))));
    } else if (cmd == "pack" && argc == 4) {
      const Bytes in = read_file(argv[2]);
      const Bytes out = cbde::compress::compress(as_view(in));
      write_file(argv[3], out);
      std::printf("%zu -> %zu bytes (%.2fx)\n", in.size(), out.size(),
                  static_cast<double>(in.size()) /
                      static_cast<double>(std::max<std::size_t>(out.size(), 1)));
    } else if (cmd == "unpack" && argc == 4) {
      write_file(argv[3], cbde::compress::decompress(as_view(read_file(argv[2]))));
    } else if (cmd == "info" && argc == 3) {
      info(read_file(argv[2]));
    } else {
      return usage();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
