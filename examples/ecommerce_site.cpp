// E-commerce catalog behind a delta-server: the full Fig. 2 architecture.
//
// A product-catalog site (the paper's www.foo.com selling laptops and
// desktops, Table I) is fronted by a delta-server. A population of shoppers
// browses it; the pipeline groups product pages into classes, selects and
// anonymizes base-files, and serves compressed deltas. Every response is
// reconstructed at the client and verified byte-for-byte.
//
//   $ ./ecommerce_site [num_requests]
#include <cstdio>
#include <cstdlib>

#include "core/simulation.hpp"

int main(int argc, char** argv) {
  using namespace cbde;
  const std::size_t num_requests =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 3000;

  // The shop: four departments of similar product pages, addressed as
  // www.foo.com/<dept>?id=<n> (Table I, row 1).
  trace::SiteConfig sconfig;
  sconfig.host = "www.foo.com";
  sconfig.style = trace::UrlStyle::kPathSegment;
  sconfig.categories = {"laptops", "desktops", "monitors", "accessories"};
  sconfig.docs_per_category = 50;
  const trace::SiteModel shop(sconfig);

  server::OriginServer origin;
  origin.add_site(shop);

  // The administrator registers the URL partition rule for this site
  // (SIII: "the administrator describes ... using regular expressions").
  http::RuleBook rules;
  rules.add_rule(sconfig.host, shop.partition_rule());

  core::PipelineConfig config;
  core::Pipeline pipeline(origin, config, rules);

  trace::WorkloadConfig wconfig;
  wconfig.num_requests = num_requests;
  wconfig.num_users = 150;
  wconfig.zipf_alpha = 1.0;
  pipeline.process_all(trace::WorkloadGenerator(shop, wconfig).generate());

  const auto report = pipeline.report();
  std::printf("requests processed      : %llu (every delta reconstruction verified)\n",
              static_cast<unsigned long long>(report.requests));
  std::printf("  served as delta       : %llu\n",
              static_cast<unsigned long long>(report.server.delta_responses));
  std::printf("  served direct         : %llu\n",
              static_cast<unsigned long long>(report.server.direct_responses));
  std::printf("  verification failures : %llu\n",
              static_cast<unsigned long long>(report.verify_failures));
  std::printf("classes formed          : %zu (for %zu product pages)\n",
              report.num_classes, shop.num_documents());
  std::printf("outbound traffic        : %.1f MB direct -> %.1f MB with CBDE "
              "(savings %.1f%%)\n",
              static_cast<double>(report.server.direct_bytes) / 1e6,
              static_cast<double>(report.server.wire_bytes + report.origin_base_bytes) /
                  1e6,
              report.origin_savings() * 100.0);
  std::printf("base-files via proxy    : %.1f MB absorbed by the proxy-cache\n",
              static_cast<double>(report.proxy_base_bytes) / 1e6);
  std::printf("server-side storage     : %.0f KB (classless delta-encoding would "
              "need %.0f KB)\n",
              static_cast<double>(report.storage_bytes) / 1024.0,
              static_cast<double>(report.classless_storage_bytes) / 1024.0);
  std::printf("modem latency           : %.2f s -> %.2f s mean per page (%.1fx faster)\n",
              report.latency_direct_us.mean() / 1e6,
              report.latency_actual_us.mean() / 1e6, report.mean_latency_ratio());

  std::printf("\nper-class status:\n");
  std::printf("  %6s %9s %9s %12s %9s %6s\n", "class", "members", "base ver",
              "base bytes", "samples", "anon");
  for (const auto& cls : pipeline.delta_server().class_summaries()) {
    std::printf("  %6llu %9llu %9u %12zu %9zu %6s\n",
                static_cast<unsigned long long>(cls.id),
                static_cast<unsigned long long>(cls.members), cls.published_version,
                cls.published_size, cls.selector_samples,
                cls.anonymizing ? "busy" : "done");
  }
  return report.verify_failures == 0 ? 0 : 1;
}
