// Quickstart: the delta-encoding round trip at the heart of the paper.
//
// Two snapshots of a dynamic page are generated; the first acts as the
// base-file. We compute the delta (Vdelta-style), gzip it with the bundled
// compressor, ship it, and reconstruct the second snapshot on the "client"
// from base + delta — exactly the Fig. 1 flow.
//
//   $ ./quickstart
#include <cstdio>

#include "compress/compressor.hpp"
#include "delta/delta.hpp"
#include "trace/document.hpp"

int main() {
  using namespace cbde;

  // A dynamic document template: shared skeleton + per-document content +
  // volatile sections + per-user personalization.
  const trace::DocumentTemplate page(/*seed=*/1, trace::TemplateConfig{});

  // The snapshot stored by both ends (the base-file) ...
  const util::Bytes base = page.generate(/*doc=*/0, /*user=*/7, /*now=*/0);
  // ... and the current snapshot of the same document, two minutes later.
  const util::Bytes current = page.generate(0, 7, 120 * util::kSecond);

  // Server side: delta = diff(base -> current), then compress it.
  const delta::EncodeResult encoded = delta::encode(util::as_view(base),
                                                    util::as_view(current));
  const util::Bytes wire = compress::compress(util::as_view(encoded.delta));

  // Client side: decompress and combine with the stored base-file.
  const util::Bytes raw = compress::decompress(util::as_view(wire));
  const util::Bytes rebuilt = delta::apply(util::as_view(base), util::as_view(raw));

  std::printf("document size       : %zu bytes\n", current.size());
  std::printf("delta (raw)         : %zu bytes (%.1f%% of the document)\n",
              encoded.delta.size(),
              100.0 * static_cast<double>(encoded.delta.size()) /
                  static_cast<double>(current.size()));
  std::printf("delta (compressed)  : %zu bytes -> reduction factor %.0fx\n", wire.size(),
              static_cast<double>(current.size()) / static_cast<double>(wire.size()));
  std::printf("reconstruction      : %s\n",
              rebuilt == current ? "exact (checksums verified)" : "MISMATCH");
  return rebuilt == current ? 0 : 1;
}
