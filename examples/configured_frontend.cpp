// Config-file-driven deployment: the administrator workflow end to end.
//
// Loads a cbde.conf (writing the documented example if the file does not
// exist), builds the delta-server front-end from it — partition rules,
// manual classes, anonymization parameters, disk-or-memory base store —
// and drives a short browsing session through it over serialized HTTP.
//
//   $ ./configured_frontend [cbde.conf]
#include <cstdio>
#include <fstream>

#include "client/http_client.hpp"
#include "core/config_loader.hpp"
#include "core/frontend.hpp"

int main(int argc, char** argv) {
  using namespace cbde;
  const std::string path = argc > 1 ? argv[1] : "cbde.conf";

  if (!std::ifstream(path)) {
    std::ofstream(path) << core::example_config();
    std::printf("wrote example configuration to %s\n", path.c_str());
  }

  core::LoadedConfig config;
  try {
    config = core::load_config_file(path);
  } catch (const core::ConfigError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  std::printf("loaded %s: anonymize=%s compress=%s K=%zu p=%.2f N=%zu store=%s\n",
              path.c_str(), config.server.anonymize ? "yes" : "no",
              config.server.compress_deltas ? "yes" : "no",
              config.server.selector.max_samples, config.server.selector.sample_prob,
              config.server.grouping.max_tries,
              config.disk_store ? config.disk_store->string().c_str() : "memory");

  // A site matching the example config's www.foo.com partition rule.
  trace::SiteConfig sconfig;
  sconfig.host = "www.foo.com";
  sconfig.style = trace::UrlStyle::kPathSegment;
  sconfig.categories = {"laptops", "desktops"};
  sconfig.docs_per_category = 20;
  const trace::SiteModel site(sconfig);
  server::OriginServer origin;
  origin.add_site(site);

  core::DeltaFrontend frontend(origin, config.server, std::move(config.rules));

  // Browse: a handful of users, several pages each, over raw HTTP bytes.
  util::SimTime now = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t direct_bytes = 0;
  client::Transport transport = [&](const http::HttpRequest& req) {
    const auto raw = frontend.handle_raw(util::as_view(req.serialize()), now);
    return http::HttpResponse::parse(util::as_view(raw));
  };
  // Users browse concurrently (interleaved), as real traffic does — the
  // anonymization process needs documents from distinct users before the
  // class base can be published (SV).
  std::size_t pages = 0;
  std::vector<client::HttpClientAgent> agents;
  for (std::uint64_t user = 1; user <= 10; ++user) agents.emplace_back(user);
  for (std::size_t page = 0; page < 15; ++page) {
    for (auto& agent : agents) {
      now += util::kSecond;
      const trace::DocRef ref{page % 2, (agent.user_id() + page) % 20};
      const auto doc = agent.get(site.url_for(ref), transport);
      direct_bytes += doc.size();
      ++pages;
    }
  }
  for (const auto& agent : agents) wire_bytes += agent.stats().bytes_over_wire;

  std::printf("browsed %zu pages: %.1f KB direct -> %.1f KB over the wire "
              "(savings %.1f%%)\n", pages,
              static_cast<double>(direct_bytes) / 1024.0,
              static_cast<double>(wire_bytes) / 1024.0,
              100.0 * (1.0 - static_cast<double>(wire_bytes) /
                                 static_cast<double>(direct_bytes)));
  std::printf("classes: %zu, base store entries: %zu (%.0f KB)\n",
              frontend.delta_server().num_classes(),
              frontend.delta_server().base_store().entries(),
              static_cast<double>(frontend.delta_server().base_store().bytes_stored()) /
                  1024.0);
  return 0;
}
