// Trace replay: drive the pipeline from an Apache-style access log.
//
// Mirrors the paper's methodology ("using traces from commercial web-sites,
// we calculate the total outbound traffic when delta-encoding and
// compression ... is used"). With no argument the example first *writes* a
// synthetic access log to ./cbde_trace.log, then replays it — so the log
// format round-trips through a real file. Pass a path to replay an
// existing log whose URLs resolve against the built-in demo site.
//
//   $ ./trace_replay [access.log]
#include <cstdio>
#include <fstream>

#include "core/simulation.hpp"
#include "trace/access_log.hpp"

int main(int argc, char** argv) {
  using namespace cbde;

  trace::SiteConfig sconfig;
  sconfig.host = "www.traced.example";
  sconfig.style = trace::UrlStyle::kPathOnly;
  sconfig.categories = {"articles", "reviews", "guides"};
  sconfig.docs_per_category = 40;
  const trace::SiteModel site(sconfig);

  const char* path = argc > 1 ? argv[1] : "cbde_trace.log";
  if (argc <= 1) {
    // Generate a workload and persist it as a Common Log Format file.
    trace::WorkloadConfig wconfig;
    wconfig.num_requests = 2000;
    wconfig.num_users = 100;
    const auto requests = trace::WorkloadGenerator(site, wconfig).generate();
    std::ofstream out(path);
    trace::write_access_log(out, trace::to_records(requests, site));
    std::printf("wrote synthetic access log: %s (%zu requests)\n", path,
                requests.size());
  }

  std::ifstream in(path);
  if (!in) {
    std::printf("cannot open %s\n", path);
    return 1;
  }
  std::size_t skipped = 0;
  const auto records = trace::read_access_log(in, &skipped);
  std::printf("parsed %zu records (%zu malformed lines skipped)\n", records.size(),
              skipped);
  if (records.empty()) return 1;

  server::OriginServer origin;
  origin.add_site(site);
  http::RuleBook rules;
  rules.add_rule(sconfig.host, site.partition_rule());
  core::PipelineConfig config;
  core::Pipeline pipeline(origin, config, rules);

  std::size_t replayed = 0;
  for (const auto& rec : records) {
    const std::string host = rec.host.empty() ? sconfig.host : rec.host;
    pipeline.process(rec.user_id, http::parse_url(host + rec.target), rec.time);
    ++replayed;
  }

  const auto report = pipeline.report();
  std::printf("replayed %zu requests: %llu deltas, %llu direct, %llu URLs unknown\n",
              replayed, static_cast<unsigned long long>(report.server.delta_responses),
              static_cast<unsigned long long>(report.server.direct_responses),
              static_cast<unsigned long long>(report.not_found));
  std::printf("outbound: %.0f KB direct -> %.0f KB with CBDE (savings %.1f%%, "
              "reduction %.0fx)\n",
              static_cast<double>(report.server.direct_bytes) / 1024.0,
              static_cast<double>(report.server.wire_bytes + report.origin_base_bytes) /
                  1024.0,
              report.origin_savings() * 100.0,
              static_cast<double>(report.server.direct_bytes) /
                  static_cast<double>(report.server.wire_bytes +
                                      report.origin_base_bytes + 1));
  std::printf("reconstruction: %llu verified, %llu failures\n",
              static_cast<unsigned long long>(report.verified),
              static_cast<unsigned long long>(report.verify_failures));
  return report.verify_failures == 0 ? 0 : 1;
}
