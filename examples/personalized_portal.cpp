// Personalized portal (the paper's my.yahoo.com case) with anonymization.
//
// Personalization is what breaks basic delta-encoding: the server would
// need one base-file per user per page. Class-based delta-encoding stores
// one base-file per class — but that base is shared across users, so §V's
// anonymization must scrub private data (credit card digits, session
// tokens) before the base is published. This example walks the process
// explicitly and proves the published base leaks nothing.
//
//   $ ./personalized_portal
#include <cstdio>
#include <string>

#include "core/anonymizer.hpp"
#include "core/delta_server.hpp"
#include "trace/document.hpp"
#include "trace/site.hpp"

int main() {
  using namespace cbde;

  // A heavily personalized portal page: every user sees their own
  // recommendations and (embedded by a careless app) a private payload.
  trace::TemplateConfig tconfig;
  tconfig.personal_bytes = 1500;
  tconfig.private_bytes = 160;
  trace::SiteConfig sconfig;
  sconfig.host = "my.portal.example";
  sconfig.categories = {"frontpage"};
  sconfig.docs_per_category = 4;
  sconfig.doc_template = tconfig;
  const trace::SiteModel portal(sconfig);

  http::RuleBook rules;
  rules.add_rule(sconfig.host, portal.partition_rule());

  core::DeltaServerConfig config;
  config.anonymizer.min_common = 2;   // M: chunk kept if >= 2 users share it
  config.anonymizer.required_docs = 6;  // N: rule of thumb N >= 2M
  core::DeltaServer server(config, std::move(rules));

  const auto url = portal.url_for(trace::DocRef{0, 0});
  std::printf("portal page: %s  (M=%zu, N=%zu)\n\n", url.to_string().c_str(),
              config.anonymizer.min_common, config.anonymizer.required_docs);

  // Users hit the page; until N distinct users have been seen, the base is
  // not anonymized and everyone gets the full document.
  core::ServedResponse last;
  std::uint64_t user = 1;
  while (true) {
    const auto doc = portal.generate(trace::DocRef{0, 0}, user, 0);
    last = server.serve(user, url, util::as_view(doc), static_cast<util::SimTime>(user));
    std::printf("user %2llu -> %-6s%s\n", static_cast<unsigned long long>(user),
                last.mode == core::ServedResponse::Mode::kDelta ? "delta" : "direct",
                last.mode == core::ServedResponse::Mode::kDelta
                    ? (" (" + std::to_string(last.wire_body.size()) + " bytes vs " +
                       std::to_string(last.doc_size) + " direct)")
                          .c_str()
                    : "  (anonymization in progress)");
    if (last.mode == core::ServedResponse::Mode::kDelta) break;
    if (++user > 50) {
      std::printf("anonymization never completed!\n");
      return 1;
    }
  }

  // The published base is what every client caches. Scan it for every
  // user's private payload.
  const auto published = server.published_base(last.class_id);
  if (!published) return 1;
  const std::string base_text = util::to_string(published->bytes);
  const auto& tmpl = portal.template_for(0);
  std::size_t leaks = 0;
  for (std::uint64_t u = 1; u <= user; ++u) {
    if (base_text.find(tmpl.private_payload(u)) != std::string::npos) ++leaks;
  }
  std::printf("\npublished base-file v%u: %zu bytes (plain base was %zu bytes)\n",
              published->version, published->bytes.size(), last.doc_size);
  std::printf("private payloads of %llu users found in shared base: %zu\n",
              static_cast<unsigned long long>(user), leaks);
  std::printf("private marker bytes present: %s\n",
              base_text.find(std::string(trace::kPrivateMarker)) == std::string::npos
                  ? "none"
                  : "LEAKED");
  std::printf("\n%s\n", leaks == 0 ? "OK: the shared base-file is anonymous."
                                   : "FAILURE: private data leaked!");
  return leaks == 0 ? 0 : 1;
}
